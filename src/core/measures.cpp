#include "core/measures.hpp"

#include <algorithm>
#include <cmath>

#include "core/performance.hpp"
#include "linalg/rsvd.hpp"
#include "linalg/svd.hpp"
#include "linalg/vector_ops.hpp"
#include "parallel/thread_pool.hpp"

namespace hetero::core {
namespace {

void require_positive(std::span<const double> values, const char* who) {
  detail::require_value(!values.empty(),
                        std::string(who) + ": empty value vector");
  for (double v : values)
    detail::require_value(v > 0.0,
                          std::string(who) + ": values must be positive");
}

// Mean of non-maximum singular values of the standard-form matrix (eq. 8).
// sigma_1 = 1 by Theorem 2, so no division is needed.
double tma_from_standard_singular_values(std::span<const double> sigma) {
  if (sigma.size() <= 1) return 0.0;
  double s = 0.0;
  for (std::size_t i = 1; i < sigma.size(); ++i) s += sigma[i];
  return s / static_cast<double>(sigma.size() - 1);
}

// Eq. 5: mean of sigma_i / sigma_1 over non-maximum singular values.
double tma_from_ratio_singular_values(std::span<const double> sigma) {
  if (sigma.size() <= 1 || sigma.front() == 0.0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 1; i < sigma.size(); ++i) s += sigma[i];
  return s / (sigma.front() * static_cast<double>(sigma.size() - 1));
}

bool wants_blocked_path(const EcsMatrix& ecs, const TmaOptions& options) {
  return options.large.min_elements > 0 &&
         ecs.task_count() * ecs.machine_count() >= options.large.min_elements;
}

// The large-matrix twin of the dense branch in tma_detailed(): tiled
// pool-parallel Sinkhorn, then the full spectrum from the blocked Gram
// route. Same measure definition, different (blocked) numeric path.
TmaResult tma_detailed_blocked(const EcsMatrix& ecs, const Weights& w,
                               const TmaOptions& options) {
  TmaResult result;
  result.used_blocked_path = true;
  par::ThreadPool& pool =
      options.large.pool ? *options.large.pool : par::shared_pool();
  const linalg::BlockedSpectrumOptions spectrum{options.large.gram_block,
                                                &pool};

  result.standard_form =
      standardize_tiled(ecs.weighted_values(w), options.sinkhorn, pool,
                        options.large.sinkhorn_tile_rows);
  if (result.standard_form.converged) {
    result.singular_values =
        linalg::blocked_singular_values(result.standard_form.standard,
                                        spectrum);
    result.value = tma_from_standard_singular_values(result.singular_values);
    result.used_standard_form = true;
    return result;
  }

  detail::require_value(options.allow_column_normalized_fallback,
                        "tma: no standard form exists for this matrix "
                        "(Section VI) and the eq. 5 fallback is disabled");
  linalg::Matrix cn = ecs.weighted_values(w);
  for (std::size_t j = 0; j < cn.cols(); ++j)
    cn.scale_col(j, 1.0 / cn.col_sum(j));
  result.singular_values = linalg::blocked_singular_values(cn, spectrum);
  result.value = tma_from_ratio_singular_values(result.singular_values);
  result.used_standard_form = false;
  return result;
}

}  // namespace

double adjacent_ratio_homogeneity(std::span<const double> values) {
  require_positive(values, "adjacent_ratio_homogeneity");
  if (values.size() == 1) return 1.0;
  const auto sorted = linalg::sorted_ascending(values);
  return adjacent_ratio_homogeneity_sorted(sorted);
}

double adjacent_ratio_homogeneity_sorted(std::span<const double> ascending) {
  detail::require_value(!ascending.empty() && ascending.front() > 0.0,
                        "adjacent_ratio_homogeneity_sorted: values must be "
                        "positive and sorted ascending");
  if (ascending.size() == 1) return 1.0;
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < ascending.size(); ++i)
    acc += ascending[i] / ascending[i + 1];
  return acc / static_cast<double>(ascending.size() - 1);
}

double min_max_ratio(std::span<const double> values) {
  require_positive(values, "min_max_ratio");
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  return *lo / *hi;
}

double adjacent_ratio_geometric_mean(std::span<const double> values) {
  require_positive(values, "adjacent_ratio_geometric_mean");
  if (values.size() == 1) return 1.0;
  const auto sorted = linalg::sorted_ascending(values);
  std::vector<double> ratios;
  ratios.reserve(sorted.size() - 1);
  for (std::size_t i = 0; i + 1 < sorted.size(); ++i)
    ratios.push_back(sorted[i] / sorted[i + 1]);
  return linalg::geometric_mean(ratios);
}

double value_cov(std::span<const double> values) {
  require_positive(values, "value_cov");
  return linalg::coefficient_of_variation(values);
}

double mph(const EcsMatrix& ecs, const Weights& w) {
  return adjacent_ratio_homogeneity(machine_performances(ecs, w));
}

double tdh(const EcsMatrix& ecs, const Weights& w) {
  return adjacent_ratio_homogeneity(task_difficulties(ecs, w));
}

TmaResult tma_detailed(const EcsMatrix& ecs, const Weights& w,
                       const TmaOptions& options) {
  TmaResult result;
  const std::size_t r = std::min(ecs.task_count(), ecs.machine_count());
  if (r == 1) {
    // A single task type or machine admits no affinity structure: the
    // paper's sum over i >= 2 is empty.
    result.value = 0.0;
    result.singular_values = {1.0};
    return result;
  }

  if (wants_blocked_path(ecs, options))
    return tma_detailed_blocked(ecs, w, options);

  result.standard_form = standardize(ecs, w, options.sinkhorn);
  if (result.standard_form.converged) {
    result.singular_values =
        linalg::singular_values(result.standard_form.standard);
    result.value = tma_from_standard_singular_values(result.singular_values);
    result.used_standard_form = true;
    return result;
  }

  detail::require_value(options.allow_column_normalized_fallback,
                        "tma: no standard form exists for this matrix "
                        "(Section VI) and the eq. 5 fallback is disabled");
  // Eq. 5 fallback: column-normalize only (the procedure of [2]).
  linalg::Matrix cn = ecs.weighted_values(w);
  for (std::size_t j = 0; j < cn.cols(); ++j)
    cn.scale_col(j, 1.0 / cn.col_sum(j));
  result.singular_values = linalg::singular_values(cn);
  result.value = tma_from_ratio_singular_values(result.singular_values);
  result.used_standard_form = false;
  return result;
}

double tma(const EcsMatrix& ecs, const Weights& w) {
  return tma_detailed(ecs, w).value;
}

double tma_column_normalized(const EcsMatrix& ecs, const Weights& w) {
  linalg::Matrix cn = ecs.weighted_values(w);
  if (std::min(cn.rows(), cn.cols()) == 1) return 0.0;
  for (std::size_t j = 0; j < cn.cols(); ++j)
    cn.scale_col(j, 1.0 / cn.col_sum(j));
  return tma_from_ratio_singular_values(linalg::singular_values(cn));
}

MeasureSet measure_set(const EcsMatrix& ecs, const Weights& w) {
  return MeasureSet{mph(ecs, w), tdh(ecs, w), tma(ecs, w)};
}

EnvironmentReport characterize(const EcsMatrix& ecs, const Weights& w,
                               const TmaOptions& options) {
  EnvironmentReport report;
  report.machine_performances = machine_performances(ecs, w);
  report.task_difficulties = task_difficulties(ecs, w);
  report.measures.mph = adjacent_ratio_homogeneity(report.machine_performances);
  report.measures.tdh = adjacent_ratio_homogeneity(report.task_difficulties);
  report.tma_detail = tma_detailed(ecs, w, options);
  report.measures.tma = report.tma_detail.value;
  report.mph_alt_ratio = min_max_ratio(report.machine_performances);
  report.mph_alt_geometric =
      adjacent_ratio_geometric_mean(report.machine_performances);
  report.mph_alt_cov = value_cov(report.machine_performances);
  return report;
}

}  // namespace hetero::core
