// Sharded LRU result cache for the characterization service.
//
// Keys are 64-bit content hashes of (request kind, ECS/ETC matrix bits,
// options); values are the fully serialized result payloads, so a hit
// skips parsing-to-response work entirely and is bit-identical to what the
// cold path produced. The key space is split across N shards, each with
// its own mutex and LRU list, so concurrent hits on different matrices
// never contend on a lock — the only cross-shard state is the relaxed
// atomic stats counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/lock_ranks.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace hetero::svc {

/// Incremental FNV-1a 64-bit content hasher. Field boundaries are length-
/// prefixed by the add_* helpers, so concatenation ambiguity cannot alias
/// two different requests onto one key.
class ContentHasher {
 public:
  ContentHasher& add_bytes(const void* data, std::size_t size) noexcept;
  ContentHasher& add_u64(std::uint64_t v) noexcept;
  ContentHasher& add_double(double v) noexcept;  // bit pattern, so -0 != +0
  ContentHasher& add_string(std::string_view s) noexcept;
  std::uint64_t digest() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;  // FNV offset basis
};

class ResultCache {
 public:
  /// `shards` is rounded up to a power of two (min 1); each shard holds at
  /// most `capacity_per_shard` entries (min 1) before evicting its LRU
  /// entry.
  ResultCache(std::size_t shards, std::size_t capacity_per_shard);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached payload and refreshes its recency, or nullopt.
  std::optional<std::string> get(std::uint64_t key);

  /// Inserts (or refreshes) a payload, evicting the shard's LRU entry when
  /// over capacity.
  void put(std::uint64_t key, std::string value);

  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Which shard `key` lives in (stable for the cache's lifetime). The
  /// event loop uses this with a ShardMap to decide whether the calling
  /// worker owns the key's shard and may serve a warm hit inline.
  std::size_t shard_index(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(key & shard_mask_);
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;  // current
  };
  Stats stats() const noexcept;

 private:
  struct Shard {
    // All shards share one rank: a thread must never hold two shard
    // mutexes at once (the equal-rank check enforces exactly that).
    support::Mutex mutex{support::kRankCacheShard, "cache-shard"};
    // LRU order: front = most recent. The map holds iterators into the
    // list; list nodes are stable under splice.
    std::list<std::pair<std::uint64_t, std::string>> lru
        HETERO_GUARDED_BY(mutex);
    std::unordered_map<std::uint64_t,
                       std::list<std::pair<std::uint64_t, std::string>>::
                           iterator>
        index HETERO_GUARDED_BY(mutex);
  };

  Shard& shard_for(std::uint64_t key) noexcept {
    // The low bits of an FNV digest are well mixed; mask selects the shard.
    return *shards_[key & shard_mask_];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t shard_mask_;
  std::size_t capacity_per_shard_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> entries_{0};
};

/// Consistent-hash assignment of cache shards to event-loop workers.
///
/// Workers place `replicas` points each on a 64-bit hash ring; a shard
/// belongs to the worker owning the first ring point at or after the
/// shard's own hash. The assignment is a pure function of (shard_count,
/// worker_count, replicas), so every worker computes the same map without
/// coordination, and growing the fleet by one worker reassigns only the
/// shards whose ring successor changed (~1/workers of them) instead of
/// reshuffling everything — warm shards stay with their worker across
/// resizes.
///
/// Ownership is used as a *serving* hint, not a partition: any worker may
/// read or write any shard through the shared ResultCache; the owner is
/// simply the worker allowed to answer warm hits inline on its loop
/// thread, which keeps each shard's mutex on one core in the steady state.
class ShardMap {
 public:
  ShardMap(std::size_t shard_count, std::size_t worker_count,
           std::size_t replicas = 64);

  std::size_t owner(std::size_t shard) const noexcept {
    return owner_[shard];
  }
  std::size_t shard_count() const noexcept { return owner_.size(); }
  std::size_t worker_count() const noexcept { return worker_count_; }

 private:
  std::vector<std::size_t> owner_;  // shard index -> worker index
  std::size_t worker_count_;
};

}  // namespace hetero::svc
