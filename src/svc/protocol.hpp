// Request/response protocol of the characterization service.
//
// The wire format is newline-delimited JSON (one request object per line,
// one response object per line), carried over stdin/stdout or a TCP
// socket. A request names a `kind` and supplies an ETC matrix in exactly
// the shape the JSON writer emits (labels optional, null = cannot run):
//
//   {"id": 7, "kind": "characterize", "etc": [[1, 2], [3, null]],
//    "deadline_ms": 100}
//   {"id": 8, "kind": "schedule", "heuristic": "min_min",
//    "tasks": [0, 1, 1, 0], "etc": {"etc": [[1, 2], [3, 4]]}}
//   {"kind": "whatif", "remove": "machines", "etc": [[1, 2], [3, 4]]}
//   {"kind": "stats"}
//
// Responses echo the id:
//
//   {"id": 7, "ok": true, "result": {...}}
//   {"id": 7, "ok": false, "error": {"code": 429, "message": "..."}}
//
// Error codes follow the HTTP idiom: 400 malformed request, 408 deadline
// expired before compute, 429 queue full (admission rejected), 500
// internal failure. compute_result is a pure function of the request, so
// identical requests always produce byte-identical result payloads — the
// property the result cache relies on.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "core/etc_matrix.hpp"
#include "sched/makespan.hpp"
#include "svc/metrics.hpp"

namespace hetero::svc {

/// Protocol error codes (HTTP-flavored).
inline constexpr int kErrBadRequest = 400;
inline constexpr int kErrDeadlineExpired = 408;
inline constexpr int kErrQueueFull = 429;
inline constexpr int kErrInternal = 500;
/// Graceful shutdown: frames already decoded but not yet admitted when the
/// event loop begins draining are answered with 503 instead of silence.
inline constexpr int kErrUnavailable = 503;

/// A parsed, validated request.
struct Request {
  RequestKind kind = RequestKind::invalid;
  /// The request's "id" member re-serialized verbatim ("null" when absent);
  /// echoed into the response envelope.
  std::string id_json = "null";
  /// The environment; absent only for `stats`.
  std::optional<core::EtcMatrix> etc;
  /// `schedule`: explicit workload (task-type indices); empty = one
  /// instance of each task type.
  sched::TaskList tasks;
  /// `schedule`: heuristic token — find_heuristic()'s tokens plus "ga".
  std::string heuristic;
  /// `schedule` with "ga": GA seed (deterministic for a fixed seed).
  std::uint64_t seed = 1;
  /// `whatif`: which removals to evaluate.
  bool whatif_machines = true;
  bool whatif_tasks = true;
  /// Relative deadline; unset = no deadline. 0 means "already expired"
  /// (useful for drain tests).
  std::optional<std::chrono::milliseconds> deadline;
};

/// Parses and validates one request line. Throws hetero::Error (surfaced
/// as a 400 response) on malformed JSON, unknown kind, a missing/invalid
/// matrix, an unknown heuristic, or out-of-range task indices.
Request parse_request(const std::string& line);

/// True when a kind's result may be served from the result cache (`stats`
/// reports live state and is never cached).
bool cacheable(RequestKind kind) noexcept;

/// Content hash of everything the result depends on: kind, matrix bits and
/// labels, heuristic/seed/tasks, what-if selection. Two requests with equal
/// keys produce byte-identical results.
std::uint64_t cache_key(const Request& request);

/// Computes the result payload (the `result` member, no envelope) for any
/// kind except `stats`. Pure; safe to call concurrently. Throws
/// hetero::Error on compute failure.
std::string compute_result(const Request& request);

/// {"id":<id>,"ok":true,"result":<result>}
std::string ok_response(const std::string& id_json, const std::string& result);

/// {"id":<id>,"ok":false,"error":{"code":<code>,"message":<message>}}
std::string error_response(const std::string& id_json, int code,
                           const std::string& message);

}  // namespace hetero::svc
