// Request/response protocol of the characterization service.
//
// The wire format is newline-delimited JSON (one request object per line,
// one response object per line), carried over stdin/stdout or a TCP
// socket. A request names a `kind` and supplies an ETC matrix in exactly
// the shape the JSON writer emits (labels optional, null = cannot run):
//
//   {"id": 7, "kind": "characterize", "etc": [[1, 2], [3, null]],
//    "deadline_ms": 100}
//   {"id": 8, "kind": "schedule", "heuristic": "min_min",
//    "tasks": [0, 1, 1, 0], "etc": {"etc": [[1, 2], [3, 4]]}}
//   {"kind": "whatif", "remove": "machines", "etc": [[1, 2], [3, 4]]}
//   {"kind": "stats"}
//
// Streaming sessions (stateful; available on the stream/TCP front ends,
// which key one session per connection):
//
//   {"id": 1, "kind": "subscribe", "etc": [[1, 2], [3, 4]],
//    "error_budget": 1e-5, "estimator": {"alpha": 0.2,
//    "min_rel_change": 0.01}}
//   {"id": 2, "kind": "update", "set": [{"task": 0, "machine": 1,
//    "etc": 2.5}], "observe": [{"task": 1, "machine": 0, "runtime": 3.1}],
//    "add_tasks": [[5, 6]], "add_machines": [[2, 3, 4]],
//    "remove_tasks": [0], "remove_machines": [1]}
//
// subscribe installs (or replaces) the connection's measure view over a
// fully-finite ETC matrix; update streams deltas against it and the
// response carries the re-evaluated measures plus view statistics. Both
// kinds are stateful, so they bypass the result cache and the raw-line
// memo, and are computed inline on the receiving thread (never queued).
//
// Responses echo the id:
//
//   {"id": 7, "ok": true, "result": {...}}
//   {"id": 7, "ok": false, "error": {"code": 429, "message": "..."}}
//
// Error codes follow the HTTP idiom: 400 malformed request, 408 deadline
// expired before compute, 429 queue full (admission rejected), 500
// internal failure. compute_result is a pure function of the request, so
// identical requests always produce byte-identical result payloads — the
// property the result cache relies on.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/etc_matrix.hpp"
#include "io/json.hpp"
#include "sched/makespan.hpp"
#include "svc/metrics.hpp"

namespace hetero::svc {

/// Protocol error codes (HTTP-flavored).
inline constexpr int kErrBadRequest = 400;
inline constexpr int kErrDeadlineExpired = 408;
inline constexpr int kErrQueueFull = 429;
inline constexpr int kErrInternal = 500;
/// Graceful shutdown: frames already decoded but not yet admitted when the
/// event loop begins draining are answered with 503 instead of silence.
inline constexpr int kErrUnavailable = 503;

/// A parsed, validated request.
struct Request {
  RequestKind kind = RequestKind::invalid;
  /// The request's "id" member re-serialized verbatim ("null" when absent);
  /// echoed into the response envelope.
  std::string id_json = "null";
  /// The environment; absent only for `stats`.
  std::optional<core::EtcMatrix> etc;
  /// `schedule`: explicit workload (task-type indices); empty = one
  /// instance of each task type.
  sched::TaskList tasks;
  /// `schedule`: heuristic token — find_heuristic()'s tokens plus "ga".
  std::string heuristic;
  /// `schedule` with "ga": GA seed (deterministic for a fixed seed).
  std::uint64_t seed = 1;
  /// `whatif`: which removals to evaluate.
  bool whatif_machines = true;
  bool whatif_tasks = true;
  /// Relative deadline; unset = no deadline. 0 means "already expired"
  /// (useful for drain tests).
  std::optional<std::chrono::milliseconds> deadline;

  /// `subscribe`: accumulated warm-update drift allowed before the
  /// session's view takes an automatic cold refresh.
  double stream_error_budget = 1e-5;
  /// `subscribe`: estimator gains (see core::EtcEstimatorOptions).
  double estimator_alpha = 0.2;
  double estimator_min_rel_change = 0.01;

  /// `update`: parsed delta lists. `set` values and the structural
  /// rows/columns are ETC entries; `observe` values are observed runtimes.
  /// Deltas apply sequentially in the order below (each list in element
  /// order, each index against the shape the preceding deltas produced);
  /// an invalid delta aborts the request at that point — earlier deltas
  /// in the same request stay applied, each one atomically.
  std::vector<std::size_t> remove_tasks;
  std::vector<std::size_t> remove_machines;
  std::vector<std::vector<double>> add_tasks;
  std::vector<std::vector<double>> add_machines;
  std::vector<io::CellUpdate> set;
  std::vector<io::CellUpdate> observe;
};

/// Parses and validates one request line. Throws hetero::Error (surfaced
/// as a 400 response) on malformed JSON, unknown kind, a missing/invalid
/// matrix, an unknown heuristic, or out-of-range task indices.
Request parse_request(const std::string& line);

/// True when a kind's result may be served from the result cache (`stats`
/// reports live state and is never cached).
bool cacheable(RequestKind kind) noexcept;

/// Content hash of everything the result depends on: kind, matrix bits and
/// labels, heuristic/seed/tasks, what-if selection. Two requests with equal
/// keys produce byte-identical results.
std::uint64_t cache_key(const Request& request);

/// Computes the result payload (the `result` member, no envelope) for any
/// kind except `stats`. Pure; safe to call concurrently. Throws
/// hetero::Error on compute failure.
std::string compute_result(const Request& request);

/// {"id":<id>,"ok":true,"result":<result>}
std::string ok_response(const std::string& id_json, const std::string& result);

/// {"id":<id>,"ok":false,"error":{"code":<code>,"message":<message>}}
std::string error_response(const std::string& id_json, int code,
                           const std::string& message);

}  // namespace hetero::svc
