#include "svc/loadgen.hpp"

#include <sstream>

#include "svc/net_util.hpp"

#if defined(__linux__) && HETERO_SVC_HAVE_SOCKETS
#define HETERO_SVC_HAVE_LOADGEN 1
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <deque>
#include <string_view>
#endif

namespace hetero::svc {

std::string LoadGenReport::to_json() const {
  std::ostringstream out;
  out << "{\"clients\":" << clients << ",\"connect_failures\":"
      << connect_failures << ",\"sent\":" << sent << ",\"received\":"
      << received << ",\"ok_true\":" << ok_true << ",\"ok_false\":"
      << ok_false << ",\"malformed\":" << malformed << ",\"dropped\":"
      << dropped << ",\"prologue_failures\":" << prologue_failures
      << ",\"bytes_in\":" << bytes_in << ",\"bytes_out\":"
      << bytes_out << ",\"elapsed_s\":" << elapsed_s
      << ",\"requests_per_s\":" << requests_per_s
      << ",\"latency_us\":{\"mean\":" << latency.mean_us()
      << ",\"p50\":" << latency.quantile_upper_us(0.50)
      << ",\"p90\":" << latency.quantile_upper_us(0.90)
      << ",\"p99\":" << latency.quantile_upper_us(0.99)
      << ",\"max\":" << latency.max_us << "},\"timed_out\":"
      << (timed_out ? "true" : "false") << ",\"ok\":"
      << (ok ? "true" : "false") << '}';
  return out.str();
}

#if HETERO_SVC_HAVE_LOADGEN

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_us(Clock::time_point from, Clock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count();
  return us < 0 ? 0 : static_cast<std::uint64_t>(us);
}

// A response must be a protocol envelope: {"id":...,"ok":true/false,...}.
// 0 = ok:true, 1 = ok:false, -1 = malformed.
int classify_response(std::string_view line) {
  if (line.size() < 8 || line.compare(0, 6, "{\"id\":") != 0) return -1;
  if (line.find("\"ok\":true") != std::string_view::npos) return 0;
  if (line.find("\"ok\":false") != std::string_view::npos) return 1;
  return -1;
}

struct Client {
  int fd = -1;
  bool connected = false;
  bool closed = false;
  std::size_t prologue_received = 0;
  std::size_t sent = 0;
  std::size_t received = 0;
  std::size_t in_flight = 0;
  std::string inbuf;
  std::string outbuf;
  std::size_t out_off = 0;
  std::deque<Clock::time_point> send_times;
  bool want_write = false;
};

}  // namespace

LoadGenReport run_load(const std::vector<std::string>& request_lines,
                       const LoadGenOptions& options) {
  LoadGenReport report;
  report.clients = options.clients;
  if (request_lines.empty() || options.clients == 0 ||
      options.requests_per_client == 0)
    return report;

  net::ignore_sigpipe();
  net::raise_nofile_limit();

  const std::size_t pipeline = std::max<std::size_t>(1, options.pipeline);
  const bool open_loop = options.open_loop_rps > 0.0;
  const std::size_t prologue_count = options.prologue_lines.size();
  const std::uint64_t total_target =
      static_cast<std::uint64_t>(options.clients) *
      options.requests_per_client;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    report.connect_failures = options.clients;
    return report;
  }

  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    report.connect_failures = options.clients;
    return report;
  }

  LatencyHistogram latency_hist;
  std::vector<Client> clients(options.clients);
  std::size_t next_to_connect = 0;   // first client not yet connect()ed
  std::size_t pending_connects = 0;  // connect() issued, not yet confirmed
  std::size_t finished = 0;          // clients fully done (closed)
  // Pace connection establishment so a 10k-client run does not dump its
  // whole SYN burst into the listen backlog at once.
  constexpr std::size_t kMaxPendingConnects = 256;

  const auto update_interest = [&](std::size_t idx) {
    Client& c = clients[idx];
    epoll_event ev{};
    ev.data.u64 = idx;
    ev.events = EPOLLIN;
    if (c.want_write || !c.connected) ev.events |= EPOLLOUT;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
  };

  const auto close_client = [&](std::size_t idx) {
    Client& c = clients[idx];
    if (c.closed) return;
    if (c.fd >= 0) {
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, c.fd, nullptr);
      ::close(c.fd);
      c.fd = -1;
    }
    c.closed = true;
    report.dropped += c.sent - c.received;
    ++finished;
  };

  const auto start_connect = [&](std::size_t idx) -> bool {
    Client& c = clients[idx];
    c.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (c.fd < 0) return false;
    const int enable = 1;
    ::setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof enable);
    const int rc = ::connect(c.fd, reinterpret_cast<const sockaddr*>(&addr),
                             sizeof addr);
    if (rc < 0 && errno != EINPROGRESS) {
      ::close(c.fd);
      c.fd = -1;
      return false;
    }
    c.connected = rc == 0;
    epoll_event ev{};
    ev.data.u64 = idx;
    ev.events = EPOLLIN | (c.connected ? 0u : EPOLLOUT);
    ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, c.fd, &ev);
    return true;
  };

  // Queues client idx's next request into its write buffer; send time is
  // stamped at queue time, so reported latency includes local write-side
  // buffering (the conservative choice for a benchmark).
  const auto queue_request = [&](std::size_t idx) {
    Client& c = clients[idx];
    const std::string& line =
        request_lines[(idx + c.sent) % request_lines.size()];
    c.outbuf.append(line);
    c.outbuf.push_back('\n');
    c.send_times.push_back(Clock::now());
    ++c.sent;
    ++c.in_flight;
    ++report.sent;
  };

  const auto flush_client = [&](std::size_t idx) -> bool {
    Client& c = clients[idx];
    while (c.out_off < c.outbuf.size()) {
      const auto n = ::send(c.fd, c.outbuf.data() + c.out_off,
                            c.outbuf.size() - c.out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_client(idx);
        return false;
      }
      c.out_off += static_cast<std::size_t>(n);
      report.bytes_out += static_cast<std::uint64_t>(n);
    }
    if (c.out_off == c.outbuf.size()) {
      c.outbuf.clear();
      c.out_off = 0;
    }
    const bool want_write = c.out_off < c.outbuf.size();
    if (want_write != c.want_write) {
      c.want_write = want_write;
      update_interest(idx);
    }
    return true;
  };

  // How a response line advanced its client: still inside the prologue,
  // the response that completed the prologue (measured stream may start),
  // or a measured response.
  enum class LineKind { prologue_pending, prologue_done, measured };

  const auto handle_response_line = [&](std::size_t idx,
                                        std::string_view line) {
    Client& c = clients[idx];
    if (c.prologue_received < prologue_count) {
      // Prologue responses are awaited but never measured: a session
      // subscribe is setup cost, not stream throughput.
      ++c.prologue_received;
      if (classify_response(line) != 0) ++report.prologue_failures;
      return c.prologue_received == prologue_count
                 ? LineKind::prologue_done
                 : LineKind::prologue_pending;
    }
    ++c.received;
    ++report.received;
    if (c.in_flight > 0) --c.in_flight;
    if (!c.send_times.empty()) {
      latency_hist.record(elapsed_us(c.send_times.front(), Clock::now()));
      c.send_times.pop_front();
    }
    switch (classify_response(line)) {
      case 0: ++report.ok_true; break;
      case 1: ++report.ok_false; break;
      default: ++report.malformed; break;
    }
    return LineKind::measured;
  };

  const auto handle_readable = [&](std::size_t idx) {
    Client& c = clients[idx];
    char chunk[65536];
    while (true) {
      const auto n = ::recv(c.fd, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        close_client(idx);
        return;
      }
      if (n == 0) {
        close_client(idx);
        return;
      }
      report.bytes_in += static_cast<std::uint64_t>(n);
      c.inbuf.append(chunk, static_cast<std::size_t>(n));
      // Split on newlines with a scan offset; the consumed prefix is
      // erased once per read, not once per line.
      std::size_t consumed = 0;
      std::size_t pos;
      while ((pos = c.inbuf.find('\n', consumed)) != std::string::npos) {
        const LineKind kind = handle_response_line(
            idx, std::string_view(c.inbuf).substr(consumed, pos - consumed));
        consumed = pos + 1;
        if (!open_loop) {
          if (kind == LineKind::prologue_done) {
            // The session is established: prime the measured pipeline.
            const std::size_t burst =
                std::min(pipeline, options.requests_per_client);
            for (std::size_t b = 0; b < burst; ++b) queue_request(idx);
            if (!flush_client(idx)) return;
          } else if (kind == LineKind::measured &&
                     c.sent < options.requests_per_client) {
            queue_request(idx);
            if (!flush_client(idx)) return;
          }
        }
      }
      if (consumed > 0) c.inbuf.erase(0, consumed);
      if (c.received == options.requests_per_client) {
        close_client(idx);
        return;
      }
      if (static_cast<std::size_t>(n) < sizeof chunk) return;
    }
  };

  // Priming on connect confirmation: with a prologue, send it (in both
  // loop modes) and hold the measured stream until its responses land;
  // otherwise fill the closed-loop pipeline window immediately.
  const auto prime_client = [&](std::size_t idx) -> bool {
    if (prologue_count > 0) {
      Client& c = clients[idx];
      for (const std::string& line : options.prologue_lines) {
        c.outbuf.append(line);
        c.outbuf.push_back('\n');
      }
      return flush_client(idx);
    }
    if (open_loop) return true;
    const std::size_t burst =
        std::min(pipeline, options.requests_per_client);
    for (std::size_t b = 0; b < burst; ++b) queue_request(idx);
    return flush_client(idx);
  };

  const Clock::time_point start = Clock::now();
  const Clock::time_point hard_deadline = start + options.time_limit;
  std::size_t open_cursor = 0;

  constexpr int kMaxEvents = 512;
  epoll_event events[kMaxEvents];
  while (finished < options.clients) {
    const Clock::time_point now = Clock::now();
    if (now > hard_deadline) {
      report.timed_out = true;
      break;
    }

    // Keep the connect pipeline full.
    while (next_to_connect < options.clients &&
           pending_connects < kMaxPendingConnects) {
      const std::size_t idx = next_to_connect++;
      if (start_connect(idx)) {
        // Loopback connects can complete synchronously; prime right away
        // instead of waiting for an EPOLLOUT that will never come.
        if (clients[idx].connected)
          prime_client(idx);
        else
          ++pending_connects;
      } else {
        ++report.connect_failures;
        clients[idx].closed = true;
        ++finished;
      }
    }

    // Open-loop schedule: issue every send whose scheduled time has
    // passed, rotating across clients that still owe requests. A tick
    // with no eligible client (connects still in flight) is retried, not
    // consumed — the schedule position is the actual send count.
    int timeout_ms = 250;
    if (open_loop) {
      while (report.sent < total_target) {
        const double due_s =
            static_cast<double>(report.sent) / options.open_loop_rps;
        const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(due_s));
        if (Clock::now() < due) {
          const auto wait_us = elapsed_us(Clock::now(), due);
          timeout_ms = static_cast<int>(
              std::min<std::uint64_t>(250, wait_us / 1000 + 1));
          break;
        }
        bool issued = false;
        for (std::size_t scan = 0; scan < options.clients; ++scan) {
          const std::size_t idx = (open_cursor + scan) % options.clients;
          Client& c = clients[idx];
          if (c.closed || !c.connected ||
              c.prologue_received < prologue_count ||
              c.sent >= options.requests_per_client)
            continue;
          open_cursor = idx + 1;
          queue_request(idx);
          flush_client(idx);
          issued = true;
          break;
        }
        if (!issued) {
          timeout_ms = 1;  // nobody ready yet; retry shortly
          break;
        }
      }
    }

    const int n = ::epoll_wait(epoll_fd, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(events[i].data.u64);
      Client& c = clients[idx];
      if (c.closed) continue;
      if (!c.connected) {
        --pending_connects;
        int err = 0;
        socklen_t len = sizeof err;
        ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0 || (events[i].events & (EPOLLHUP | EPOLLERR))) {
          ++report.connect_failures;
          close_client(idx);
          continue;
        }
        c.connected = true;
        update_interest(idx);
        prime_client(idx);
        continue;
      }
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        handle_readable(idx);  // drain anything delivered before the HUP
        if (!clients[idx].closed) close_client(idx);
        continue;
      }
      if (events[i].events & EPOLLOUT) {
        if (!flush_client(idx)) continue;
      }
      if (events[i].events & EPOLLIN) handle_readable(idx);
    }
  }

  // Anything still open at exit (time limit) counts its owed responses as
  // dropped via close_client.
  for (std::size_t idx = 0; idx < clients.size(); ++idx)
    if (!clients[idx].closed) close_client(idx);
  ::close(epoll_fd);

  report.latency = latency_hist.snapshot();
  report.elapsed_s =
      static_cast<double>(elapsed_us(start, Clock::now())) / 1e6;
  report.requests_per_s =
      report.elapsed_s > 0.0
          ? static_cast<double>(report.received) / report.elapsed_s
          : 0.0;
  report.ok = report.connect_failures == 0 && report.malformed == 0 &&
              report.dropped == 0 && report.prologue_failures == 0 &&
              !report.timed_out && report.received == total_target;
  return report;
}

#else  // !HETERO_SVC_HAVE_LOADGEN

LoadGenReport run_load(const std::vector<std::string>&,
                       const LoadGenOptions& options) {
  LoadGenReport report;
  report.clients = options.clients;
  report.connect_failures = options.clients;
  return report;
}

#endif

}  // namespace hetero::svc
