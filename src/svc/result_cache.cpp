#include "svc/result_cache.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

namespace hetero::svc {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}

ContentHasher& ContentHasher::add_bytes(const void* data,
                                        std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash_ ^= p[i];
    hash_ *= kFnvPrime;
  }
  return *this;
}

ContentHasher& ContentHasher::add_u64(std::uint64_t v) noexcept {
  return add_bytes(&v, sizeof v);
}

ContentHasher& ContentHasher::add_double(double v) noexcept {
  return add_u64(std::bit_cast<std::uint64_t>(v));
}

ContentHasher& ContentHasher::add_string(std::string_view s) noexcept {
  add_u64(s.size());
  return add_bytes(s.data(), s.size());
}

ResultCache::ResultCache(std::size_t shards, std::size_t capacity_per_shard)
    : capacity_per_shard_(capacity_per_shard == 0 ? 1 : capacity_per_shard) {
  const std::size_t count = std::bit_ceil(shards == 0 ? std::size_t{1}
                                                      : shards);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    shards_.push_back(std::make_unique<Shard>());
  shard_mask_ = count - 1;
}

std::optional<std::string> ResultCache::get(std::uint64_t key) {
  Shard& s = shard_for(key);
  {
    const support::MutexLock lock(s.mutex);
    const auto it = s.index.find(key);
    if (it != s.index.end()) {
      s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void ResultCache::put(std::uint64_t key, std::string value) {
  Shard& s = shard_for(key);
  const support::MutexLock lock(s.mutex);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    // Same key implies same content hash; keep the existing payload (it is
    // bit-identical by the cache contract) and just refresh recency.
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.emplace_front(key, std::move(value));
  s.index.emplace(key, s.lru.begin());
  entries_.fetch_add(1, std::memory_order_relaxed);
  if (s.lru.size() > capacity_per_shard_) {
    s.index.erase(s.lru.back().first);
    s.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
  }
}

namespace {

// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash for ring points.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ShardMap::ShardMap(std::size_t shard_count, std::size_t worker_count,
                   std::size_t replicas)
    : worker_count_(worker_count == 0 ? 1 : worker_count) {
  if (shard_count == 0) shard_count = 1;
  if (replicas == 0) replicas = 1;
  // Ring points: (hash, worker), sorted by hash. Ties cannot occur in
  // practice (64-bit mixes of distinct inputs); if one did, the lower
  // worker index wins deterministically via the pair ordering.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring;
  ring.reserve(worker_count_ * replicas);
  for (std::size_t w = 0; w < worker_count_; ++w)
    for (std::size_t r = 0; r < replicas; ++r)
      ring.emplace_back(mix64((static_cast<std::uint64_t>(w) << 32) | r), w);
  std::sort(ring.begin(), ring.end());
  owner_.resize(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::uint64_t h = mix64(0xABCDEF0000000000ull + s);
    auto it = std::lower_bound(
        ring.begin(), ring.end(),
        std::make_pair(h, std::size_t{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    if (it == ring.end()) it = ring.begin();  // wrap around the ring
    owner_[s] = it->second;
  }
}

ResultCache::Stats ResultCache::stats() const noexcept {
  Stats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.evictions = evictions_.load(std::memory_order_relaxed);
  st.entries = entries_.load(std::memory_order_relaxed);
  return st;
}

}  // namespace hetero::svc
