#include "svc/result_cache.hpp"

#include <bit>
#include <cstring>

namespace hetero::svc {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}

ContentHasher& ContentHasher::add_bytes(const void* data,
                                        std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash_ ^= p[i];
    hash_ *= kFnvPrime;
  }
  return *this;
}

ContentHasher& ContentHasher::add_u64(std::uint64_t v) noexcept {
  return add_bytes(&v, sizeof v);
}

ContentHasher& ContentHasher::add_double(double v) noexcept {
  return add_u64(std::bit_cast<std::uint64_t>(v));
}

ContentHasher& ContentHasher::add_string(std::string_view s) noexcept {
  add_u64(s.size());
  return add_bytes(s.data(), s.size());
}

ResultCache::ResultCache(std::size_t shards, std::size_t capacity_per_shard)
    : capacity_per_shard_(capacity_per_shard == 0 ? 1 : capacity_per_shard) {
  const std::size_t count = std::bit_ceil(shards == 0 ? std::size_t{1}
                                                      : shards);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    shards_.push_back(std::make_unique<Shard>());
  shard_mask_ = count - 1;
}

std::optional<std::string> ResultCache::get(std::uint64_t key) {
  Shard& s = shard_for(key);
  {
    const std::scoped_lock lock(s.mutex);
    const auto it = s.index.find(key);
    if (it != s.index.end()) {
      s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void ResultCache::put(std::uint64_t key, std::string value) {
  Shard& s = shard_for(key);
  const std::scoped_lock lock(s.mutex);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    // Same key implies same content hash; keep the existing payload (it is
    // bit-identical by the cache contract) and just refresh recency.
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.emplace_front(key, std::move(value));
  s.index.emplace(key, s.lru.begin());
  entries_.fetch_add(1, std::memory_order_relaxed);
  if (s.lru.size() > capacity_per_shard_) {
    s.index.erase(s.lru.back().first);
    s.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
  }
}

ResultCache::Stats ResultCache::stats() const noexcept {
  Stats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.evictions = evictions_.load(std::memory_order_relaxed);
  st.entries = entries_.load(std::memory_order_relaxed);
  return st;
}

}  // namespace hetero::svc
