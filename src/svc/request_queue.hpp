// Bounded MPMC request queue with admission control for the service layer.
//
// Producers (protocol front ends) call try_push, which rejects instead of
// blocking when the queue is at its configured depth — the server turns a
// rejection into an explicit 429-style error response, so overload is
// always visible to the client, never a silent drop or an unbounded
// buffer. Consumers (thread-pool workers) pop FIFO; close() stops
// admission and wakes blocked consumers.
//
// Deadlines ride with each item: the worker checks expiry when it pops
// (before dispatch) and the compute pipeline re-checks between stages.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "support/lock_ranks.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"
#include "svc/protocol.hpp"

namespace hetero::svc {

/// Delivers the response line for one request; invoked exactly once per
/// submitted request (admission rejections invoke it on the submitting
/// thread).
using ResponseFn = std::function<void(std::string)>;

/// One admitted request, carried from the protocol front end to a worker.
struct QueuedItem {
  std::uint64_t sequence = 0;  // admission order, assigned by the queue
  Request request;
  ResponseFn respond;
  /// Content hash computed at admission (the event-loop front end hashes
  /// on the loop thread for its warm-hit fast path); the worker reuses it
  /// instead of re-hashing the matrix. nullopt = compute on the worker.
  std::optional<std::uint64_t> cache_key;
  std::chrono::steady_clock::time_point enqueued{};
  /// time_point::max() means "no deadline".
  std::chrono::steady_clock::time_point deadline{
      std::chrono::steady_clock::time_point::max()};

  bool expired(std::chrono::steady_clock::time_point now) const noexcept {
    return now > deadline;
  }
};

class RequestQueue {
 public:
  /// Depth 0 is clamped to 1 (a zero-depth queue would reject everything).
  explicit RequestQueue(std::size_t depth);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Admission control: enqueues and returns true, or returns false
  /// immediately when the queue holds `depth` items or is closed. Never
  /// blocks. On success the item is moved in and its sequence number is
  /// its admission order; on rejection the item is left untouched so the
  /// caller can still deliver the rejection response.
  bool try_push(QueuedItem&& item);

  /// Blocks until an item is available or the queue is closed and empty
  /// (then nullopt). FIFO across producers.
  std::optional<QueuedItem> pop();

  /// Non-blocking pop; nullopt when empty. Items remain poppable after
  /// close() so admitted work always drains.
  std::optional<QueuedItem> try_pop();

  /// Rejects all future pushes and wakes blocked consumers.
  void close();

  std::size_t depth() const noexcept { return depth_; }
  std::size_t size() const;

 private:
  const std::size_t depth_;
  mutable support::Mutex mutex_{support::kRankRequestQueue, "request-queue"};
  support::CondVar cv_;
  std::deque<QueuedItem> items_ HETERO_GUARDED_BY(mutex_);
  std::uint64_t next_sequence_ HETERO_GUARDED_BY(mutex_) = 0;
  bool closed_ HETERO_GUARDED_BY(mutex_) = false;
};

}  // namespace hetero::svc
