// Per-connection streaming characterization state: the stateful half of
// the `subscribe`/`update` request kinds.
//
// A subscribe installs (or replaces) a core::MeasureView over the
// connection's ETC matrix plus a core::EtcEstimator tracking noisy runtime
// observations; updates then stream deltas instead of re-sending matrices.
// Session requests are inherently uncacheable (the same bytes produce
// different results as the view evolves), so the server computes them
// inline on the receiving thread — never through the admission queue, the
// result cache, or the event loop's raw-line memo — and each front end
// keys exactly one session per connection.
//
// Thread safety: all state is guarded by a ranked mutex
// (support::kRankStreamSession). Session compute takes no further locks,
// so the rank can sit anywhere; it is placed between admission and the
// cache to keep a future cache-consulting session path legal.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/etc_estimator.hpp"
#include "core/measure_view.hpp"
#include "support/lock_ranks.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"
#include "svc/protocol.hpp"

namespace hetero::svc {

class StreamSession {
 public:
  /// Handles one subscribe or update request, returning the result payload
  /// (no envelope): the re-evaluated measures plus view statistics. Throws
  /// hetero::Error on protocol violations — update before subscribe,
  /// non-finite subscribe matrix, out-of-range indices, non-positive
  /// values, or an update tripping the Sinkhorn scale-overflow guard — all
  /// surfaced as 400 responses. Deltas apply sequentially; a throwing
  /// delta aborts the request at that point with every prior delta in the
  /// request still applied (each delta is individually atomic).
  std::string handle(const Request& request);

  /// True once a subscribe has installed a view.
  bool active() const;

 private:
  std::string apply_subscribe(const Request& request)
      HETERO_REQUIRES(mutex_);
  std::string apply_update(const Request& request) HETERO_REQUIRES(mutex_);
  std::string result_payload(std::uint64_t fed, std::uint64_t observed,
                             std::uint64_t cold_before)
      HETERO_REQUIRES(mutex_);

  mutable support::Mutex mutex_{support::kRankStreamSession,
                                "stream-session"};
  std::optional<core::MeasureView> view_ HETERO_GUARDED_BY(mutex_);
  std::optional<core::EtcEstimator> estimator_ HETERO_GUARDED_BY(mutex_);
};

}  // namespace hetero::svc
