#include "svc/server.hpp"

#include <istream>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include "base/error.hpp"
#include "support/lock_ranks.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"
#include "svc/net_util.hpp"
#include "svc/session.hpp"

#if HETERO_SVC_HAVE_SOCKETS
#include <arpa/inet.h>
#include <cerrno>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace hetero::svc {
namespace {

using Clock = std::chrono::steady_clock;

// Thrown inside the worker pipeline when a between-stage deadline check
// fails; mapped to kErrDeadlineExpired (never surfaces to callers).
class DeadlineExpired : public Error {
 public:
  DeadlineExpired() : Error("deadline expired") {}
};

std::uint64_t elapsed_us(Clock::time_point from, Clock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count();
  return us < 0 ? 0 : static_cast<std::uint64_t>(us);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      cache_(options.cache_shards, options.cache_capacity_per_shard),
      queue_(options.queue_depth),
      pool_(options.threads) {}

Server::~Server() {
  queue_.close();
  // The pool destructor drains outstanding jobs; every admitted request
  // has exactly one drain job, so every queued item is answered before
  // the workers join.
}

bool Server::is_session_kind(RequestKind kind) noexcept {
  return kind == RequestKind::update || kind == RequestKind::subscribe;
}

std::string Server::session_response(const Request& request,
                                     StreamSession* session) {
  auto& k = metrics_.kind(request.kind);
  if (session == nullptr) {
    k.errors.fetch_add(1, std::memory_order_relaxed);
    return error_response(request.id_json, kErrBadRequest,
                          std::string(kind_name(request.kind)) +
                              ": this front end has no streaming sessions");
  }
  const Clock::time_point start = Clock::now();
  try {
    std::string result = session->handle(request);
    k.queue_wait.record(0);
    k.compute.record(elapsed_us(start, Clock::now()));
    k.completed.fetch_add(1, std::memory_order_relaxed);
    return ok_response(request.id_json, result);
  } catch (const Error& e) {
    // Session failures are request-content errors (bad indices,
    // non-positive values, overflow-guard trips, update-before-subscribe):
    // 400, with the session still consistent.
    k.errors.fetch_add(1, std::memory_order_relaxed);
    return error_response(request.id_json, kErrBadRequest, e.what());
  }
}

void Server::submit(const std::string& line, ResponseFn respond,
                    StreamSession* session) {
  const Clock::time_point t0 = Clock::now();
  QueuedItem item;
  try {
    item.request = parse_request(line);
  } catch (const Error& e) {
    auto& k = metrics_.kind(RequestKind::invalid);
    k.received.fetch_add(1, std::memory_order_relaxed);
    k.errors.fetch_add(1, std::memory_order_relaxed);
    respond(error_response("null", kErrBadRequest, e.what()));
    return;
  }
  metrics_.kind(item.request.kind)
      .received.fetch_add(1, std::memory_order_relaxed);
  if (is_session_kind(item.request.kind)) {
    respond(session_response(item.request, session));
    return;
  }
  item.respond = std::move(respond);
  item.enqueued = t0;
  if (item.request.deadline)
    item.deadline = t0 + *item.request.deadline;
  else if (options_.default_deadline.count() > 0)
    item.deadline = t0 + options_.default_deadline;

  if (!queue_.try_push(std::move(item))) {
    metrics_.count_rejected_full();
    item.respond(error_response(
        item.request.id_json, kErrQueueFull,
        "queue full (depth " + std::to_string(queue_.depth()) +
            "); retry later"));
    return;
  }
  pool_.submit([this] { drain_one(); });
}

std::optional<std::string> Server::submit_fast(const std::string& line,
                                               ResponseFn respond,
                                               const ShardMap* shard_map,
                                               std::size_t worker_index,
                                               FastPathInfo* info,
                                               StreamSession* session) {
  const Clock::time_point t0 = Clock::now();
  QueuedItem item;
  try {
    item.request = parse_request(line);
  } catch (const Error& e) {
    auto& k = metrics_.kind(RequestKind::invalid);
    k.received.fetch_add(1, std::memory_order_relaxed);
    k.errors.fetch_add(1, std::memory_order_relaxed);
    return error_response("null", kErrBadRequest, e.what());
  }
  auto& k = metrics_.kind(item.request.kind);
  k.received.fetch_add(1, std::memory_order_relaxed);
  if (is_session_kind(item.request.kind)) {
    // Inline, uncacheable, never memoized: info keeps inline_hit false so
    // the event loop's raw-line memo cannot replay a stateful response.
    if (info) {
      info->kind = item.request.kind;
      info->inline_hit = false;
      info->had_deadline = false;
    }
    return session_response(item.request, session);
  }
  item.enqueued = t0;
  if (item.request.deadline)
    item.deadline = t0 + *item.request.deadline;
  else if (options_.default_deadline.count() > 0)
    item.deadline = t0 + options_.default_deadline;
  if (info) {
    info->kind = item.request.kind;
    info->inline_hit = false;
    info->had_deadline = item.deadline != Clock::time_point::max();
  }

  if (cacheable(item.request.kind)) {
    item.cache_key = cache_key(item.request);
    const bool owns_shard =
        shard_map == nullptr ||
        shard_map->owner(cache_.shard_index(*item.cache_key)) == worker_index;
    if (owns_shard) {
      // Inline warm-hit path: same expiry check the worker would make at
      // pop time, then the cache — a hit responds from the loop thread
      // with the exact bytes the pool path would have produced.
      if (item.expired(Clock::now())) {
        metrics_.count_rejected_deadline();
        return error_response(item.request.id_json, kErrDeadlineExpired,
                              "deadline expired before dispatch");
      }
      if (auto hit = cache_.get(*item.cache_key)) {
        k.cache_hits.fetch_add(1, std::memory_order_relaxed);
        k.queue_wait.record(0);
        k.compute.record(elapsed_us(t0, Clock::now()));
        k.completed.fetch_add(1, std::memory_order_relaxed);
        if (info) info->inline_hit = true;
        return ok_response(item.request.id_json, *hit);
      }
    }
  }

  item.respond = std::move(respond);
  if (!queue_.try_push(std::move(item))) {
    // Rejection leaves the item intact, so the id is still available.
    metrics_.count_rejected_full();
    return error_response(
        item.request.id_json, kErrQueueFull,
        "queue full (depth " + std::to_string(queue_.depth()) +
            "); retry later");
  }
  pool_.submit([this] { drain_one(); });
  return std::nullopt;
}

void Server::drain_one() {
  auto popped = queue_.try_pop();
  if (!popped) return;  // close() raced; nothing left to answer
  const QueuedItem item = std::move(*popped);
  const Clock::time_point now = Clock::now();
  metrics_.kind(item.request.kind)
      .queue_wait.record(elapsed_us(item.enqueued, now));
  if (item.expired(now)) {
    metrics_.count_rejected_deadline();
    item.respond(error_response(item.request.id_json, kErrDeadlineExpired,
                                "deadline expired before dispatch"));
    return;
  }
  process(item);
}

std::string Server::result_for(const Request& request,
                               Clock::time_point deadline,
                               std::optional<std::uint64_t> precomputed_key) {
  if (request.kind == RequestKind::stats) return to_json(metrics_.snapshot());
  auto& k = metrics_.kind(request.kind);
  if (!cacheable(request.kind)) return compute_result(request);
  const std::uint64_t key =
      precomputed_key ? *precomputed_key : cache_key(request);
  if (auto hit = cache_.get(key)) {
    k.cache_hits.fetch_add(1, std::memory_order_relaxed);
    return *std::move(hit);
  }
  k.cache_misses.fetch_add(1, std::memory_order_relaxed);
  // Between-stage deadline check: the expensive compute has not started
  // yet, so an expired request can still be rejected cheaply.
  if (Clock::now() > deadline) throw DeadlineExpired();
  std::string result = compute_result(request);
  cache_.put(key, result);
  return result;
}

void Server::process(const QueuedItem& item) {
  auto& k = metrics_.kind(item.request.kind);
  const Clock::time_point start = Clock::now();
  try {
    std::string result = result_for(item.request, item.deadline,
                                    item.cache_key);
    k.compute.record(elapsed_us(start, Clock::now()));
    k.completed.fetch_add(1, std::memory_order_relaxed);
    item.respond(ok_response(item.request.id_json, result));
  } catch (const DeadlineExpired&) {
    metrics_.count_rejected_deadline();
    item.respond(error_response(item.request.id_json, kErrDeadlineExpired,
                                "deadline expired before compute"));
  } catch (const Error& e) {
    k.errors.fetch_add(1, std::memory_order_relaxed);
    item.respond(
        error_response(item.request.id_json, kErrInternal, e.what()));
  }
}

std::string Server::handle(const std::string& line, StreamSession* session) {
  std::string out;
  const Clock::time_point t0 = Clock::now();
  QueuedItem item;
  try {
    item.request = parse_request(line);
  } catch (const Error& e) {
    auto& k = metrics_.kind(RequestKind::invalid);
    k.received.fetch_add(1, std::memory_order_relaxed);
    k.errors.fetch_add(1, std::memory_order_relaxed);
    return error_response("null", kErrBadRequest, e.what());
  }
  metrics_.kind(item.request.kind)
      .received.fetch_add(1, std::memory_order_relaxed);
  if (is_session_kind(item.request.kind))
    return session_response(item.request, session);
  item.enqueued = t0;
  if (item.request.deadline)
    item.deadline = t0 + *item.request.deadline;
  else if (options_.default_deadline.count() > 0)
    item.deadline = t0 + options_.default_deadline;
  item.respond = [&out](std::string response) { out = std::move(response); };
  process(item);
  return out;
}

namespace {

// serve_stream's shared state: serialized response writes plus the drain
// bookkeeping. Guarded accesses live in member functions (not in the
// response lambda) so the thread-safety analysis can verify each one
// against the mutex it requires.
class StreamGate {
 public:
  void begin_request() {
    const support::MutexLock lock(flight_mutex_);
    ++in_flight_;
  }

  void write_response(std::ostream& out, const std::string& response) {
    const support::MutexLock lock(out_mutex_);
    out << response << '\n';
    out.flush();
  }

  void end_request() {
    // Notify under the lock: the waiter destroys this object right after
    // the predicate holds, so an unlocked notify could touch a dead cv.
    const support::MutexLock lock(flight_mutex_);
    --in_flight_;
    drained_.notify_one();
  }

  void wait_drained() {
    support::MutexLock lock(flight_mutex_);
    while (in_flight_ != 0) drained_.wait(lock);
  }

 private:
  support::Mutex out_mutex_{support::kRankStreamOut, "stream-out"};
  support::Mutex flight_mutex_{support::kRankStreamFlight, "stream-flight"};
  support::CondVar drained_;
  std::size_t in_flight_ HETERO_GUARDED_BY(flight_mutex_) = 0;
};

}  // namespace

void Server::serve_stream(std::istream& in, std::ostream& out) {
  StreamGate gate;
  // One streaming session per stream: the stdin/stdout mode behaves like a
  // single connection, so subscribe/update state lives for the whole run.
  StreamSession session;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    gate.begin_request();
    submit(
        line,
        [&gate, &out](std::string response) {
          gate.write_response(out, response);
          gate.end_request();
        },
        &session);
    line.clear();
  }
  gate.wait_drained();
}

#if HETERO_SVC_HAVE_SOCKETS

namespace {

// Shared per-connection state: responses from worker threads and the
// reader loop both hold a reference; the socket closes when the last one
// drops (so a late response never writes into a recycled fd).
struct Connection {
  Connection(int descriptor, Metrics::ConnectionGauges& g)
      : fd(descriptor), gauges(g) {}
  ~Connection() {
    ::close(fd);
    gauges.active.fetch_sub(1, std::memory_order_relaxed);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void send_line(std::string response) {
    response += '\n';
    const support::MutexLock lock(mutex);
    std::size_t off = 0;
    while (off < response.size()) {
      // MSG_NOSIGNAL: a peer that closed mid-write yields EPIPE, never a
      // process-killing SIGPIPE (SIGPIPE is also ignored process-wide by
      // the socket front ends, for platforms where the flag is missing).
      const auto sent = ::send(fd, response.data() + off,
                               response.size() - off, MSG_NOSIGNAL);
      if (sent < 0 && errno == EINTR) continue;
      if (sent <= 0) return;  // peer went away; response is undeliverable
      off += static_cast<std::size_t>(sent);
      gauges.bytes_out.fetch_add(static_cast<std::uint64_t>(sent),
                                 std::memory_order_relaxed);
    }
  }

  const int fd;
  Metrics::ConnectionGauges& gauges;
  support::Mutex mutex{support::kRankConnectionWrite, "tcp-conn-write"};
};

}  // namespace

int Server::serve_tcp(std::uint16_t port, std::ostream& log) {
  net::ignore_sigpipe();
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    log << "svc: socket() failed\n";
    return 1;
  }
  const int enable = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    log << "svc: bind() to port " << port << " failed\n";
    ::close(listen_fd);
    return 1;
  }
  if (::listen(listen_fd, 64) < 0) {
    log << "svc: listen() failed\n";
    ::close(listen_fd);
    return 1;
  }
  log << "svc: listening on port " << port << '\n';

  auto& gauges = metrics_.connections();
  std::vector<std::jthread> readers;
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      // Transient accept failures are not fatal: a signal (EINTR) or a
      // peer that reset before we got to it (ECONNABORTED) just means
      // "try again"; so does running out of descriptors for a moment.
      if (errno == EINTR || errno == ECONNABORTED || errno == EMFILE ||
          errno == ENFILE)
        continue;
      break;
    }
    gauges.accepted.fetch_add(1, std::memory_order_relaxed);
    gauges.active.fetch_add(1, std::memory_order_relaxed);
    readers.emplace_back([this, fd, &gauges] {
      const auto conn = std::make_shared<Connection>(fd, gauges);
      // Per-connection streaming session; session requests respond inline
      // on this reader thread, so the session outlives every use.
      StreamSession session;
      std::string buffer;
      char chunk[4096];
      while (true) {
        const auto n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        gauges.bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                                  std::memory_order_relaxed);
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t newline;
        while ((newline = buffer.find('\n')) != std::string::npos) {
          std::string request_line = buffer.substr(0, newline);
          buffer.erase(0, newline + 1);
          if (request_line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
          submit(
              request_line,
              [conn](std::string response) {
                conn->send_line(std::move(response));
              },
              &session);
        }
      }
    });
  }
  ::close(listen_fd);
  return 0;
}

#else

int Server::serve_tcp(std::uint16_t, std::ostream& log) {
  log << "svc: TCP mode is not supported on this platform\n";
  return 1;
}

#endif

}  // namespace hetero::svc
