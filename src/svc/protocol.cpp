#include "svc/protocol.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "base/error.hpp"
#include "core/measures.hpp"
#include "core/whatif.hpp"
#include "io/json.hpp"
#include "sched/evolutionary.hpp"
#include "sched/heuristics.hpp"
#include "svc/result_cache.hpp"

namespace hetero::svc {
namespace {

// Bumped whenever the result payload format changes, so stale cache
// entries from an older schema can never alias a new request's key.
constexpr std::string_view kCacheSchemaTag = "svc-v1";

bool needs_matrix(RequestKind kind) noexcept {
  return kind == RequestKind::characterize || kind == RequestKind::measures ||
         kind == RequestKind::schedule || kind == RequestKind::whatif;
}

std::string schedule_result(const Request& request) {
  const core::EtcMatrix& etc = *request.etc;
  const sched::TaskList tasks =
      request.tasks.empty() ? sched::one_of_each(etc) : request.tasks;
  sched::Assignment assignment;
  if (request.heuristic == "ga") {
    sched::GaMapperOptions options;
    options.seed = request.seed;
    assignment = sched::map_genetic(etc, tasks, options);
  } else {
    const sched::Heuristic* h = sched::find_heuristic(request.heuristic);
    detail::require_value(h != nullptr,
                          "schedule: unknown heuristic \"" +
                              request.heuristic + "\"");
    assignment = h->map(etc, tasks);
  }
  return io::to_json(sched::summarize_schedule(etc, tasks, request.heuristic,
                                               std::move(assignment)));
}

std::string whatif_result(const Request& request) {
  const auto ecs = request.etc->to_ecs();
  std::ostringstream os;
  os << "{\"changes\":[";
  bool first = true;
  const auto append = [&](const std::vector<core::WhatIfDelta>& deltas) {
    for (const auto& d : deltas) {
      if (!first) os << ',';
      first = false;
      os << "{\"description\":\"" << io::json_escape(d.description)
         << "\",\"before\":" << io::to_json(d.before)
         << ",\"after\":" << io::to_json(d.after) << '}';
    }
  };
  if (request.whatif_machines)
    append(core::whatif_remove_each_machine(ecs));
  if (request.whatif_tasks) append(core::whatif_remove_each_task(ecs));
  os << "]}";
  return std::move(os).str();
}

}  // namespace

Request parse_request(const std::string& line) {
  const io::JsonValue doc = io::parse_json(line);
  detail::require_value(doc.is_object(), "request must be a JSON object");
  Request request;
  if (const io::JsonValue* id = doc.find("id"))
    request.id_json = io::to_json(*id);

  const io::JsonValue* kind = doc.find("kind");
  detail::require_value(kind != nullptr && kind->is_string(),
                        "request needs a string \"kind\"");
  request.kind = parse_kind(kind->as_string());
  detail::require_value(request.kind != RequestKind::invalid,
                        "unknown request kind \"" + kind->as_string() + "\"");

  if (const io::JsonValue* d = doc.find("deadline_ms")) {
    const double ms = d->as_number();
    detail::require_value(ms >= 0 && std::isfinite(ms),
                          "deadline_ms must be a nonnegative number");
    request.deadline =
        std::chrono::milliseconds(static_cast<std::int64_t>(ms));
  }

  if (needs_matrix(request.kind)) {
    const io::JsonValue* etc = doc.find("etc");
    detail::require_value(etc != nullptr,
                          "request needs an \"etc\" matrix");
    request.etc = io::etc_from_json(*etc);
  }

  if (request.kind == RequestKind::schedule) {
    const io::JsonValue* heuristic = doc.find("heuristic");
    detail::require_value(heuristic != nullptr && heuristic->is_string(),
                          "schedule needs a string \"heuristic\"");
    request.heuristic = heuristic->as_string();
    detail::require_value(
        request.heuristic == "ga" ||
            sched::find_heuristic(request.heuristic) != nullptr,
        "schedule: unknown heuristic \"" + request.heuristic + "\"");
    if (const io::JsonValue* seed = doc.find("seed"))
      request.seed = static_cast<std::uint64_t>(seed->as_number());
    if (const io::JsonValue* tasks = doc.find("tasks")) {
      for (const auto& t : tasks->as_array()) {
        const double v = t.as_number();
        detail::require_value(
            v >= 0 && v < static_cast<double>(request.etc->task_count()),
            "schedule: task index out of range");
        request.tasks.push_back(static_cast<std::size_t>(v));
      }
      detail::require_value(!request.tasks.empty(),
                            "schedule: \"tasks\" must not be empty");
    }
  }

  if (request.kind == RequestKind::subscribe) {
    // Subscribe carries a matrix but must never be cacheable (it mutates
    // session state), so it is parsed here rather than via needs_matrix().
    const io::JsonValue* etc = doc.find("etc");
    detail::require_value(etc != nullptr,
                          "subscribe needs an \"etc\" matrix");
    request.etc = io::etc_from_json(*etc);
    if (const io::JsonValue* budget = doc.find("error_budget")) {
      const double v = budget->as_number();
      detail::require_value(v >= 0 && std::isfinite(v),
                            "subscribe: error_budget must be a nonnegative "
                            "number");
      request.stream_error_budget = v;
    }
    if (const io::JsonValue* est = doc.find("estimator")) {
      detail::require_value(est->is_object(),
                            "subscribe: \"estimator\" must be an object");
      if (const io::JsonValue* alpha = est->find("alpha")) {
        const double v = alpha->as_number();
        detail::require_value(v > 0 && v <= 1,
                              "subscribe: estimator.alpha must be in (0, 1]");
        request.estimator_alpha = v;
      }
      if (const io::JsonValue* mrc = est->find("min_rel_change")) {
        const double v = mrc->as_number();
        detail::require_value(v >= 0 && std::isfinite(v),
                              "subscribe: estimator.min_rel_change must be a "
                              "nonnegative number");
        request.estimator_min_rel_change = v;
      }
    }
  }

  if (request.kind == RequestKind::update) {
    if (const io::JsonValue* v = doc.find("remove_tasks"))
      request.remove_tasks = io::index_list_from_json(*v);
    if (const io::JsonValue* v = doc.find("remove_machines"))
      request.remove_machines = io::index_list_from_json(*v);
    if (const io::JsonValue* v = doc.find("add_tasks"))
      request.add_tasks = io::number_lists_from_json(*v);
    if (const io::JsonValue* v = doc.find("add_machines"))
      request.add_machines = io::number_lists_from_json(*v);
    if (const io::JsonValue* v = doc.find("set"))
      request.set = io::cell_updates_from_json(*v, "etc");
    if (const io::JsonValue* v = doc.find("observe"))
      request.observe = io::cell_updates_from_json(*v, "runtime");
  }

  if (request.kind == RequestKind::whatif) {
    if (const io::JsonValue* remove = doc.find("remove")) {
      const std::string& mode = remove->as_string();
      detail::require_value(
          mode == "machines" || mode == "tasks" || mode == "both",
          "whatif: \"remove\" must be machines|tasks|both");
      request.whatif_machines = mode != "tasks";
      request.whatif_tasks = mode != "machines";
    }
  }
  return request;
}

bool cacheable(RequestKind kind) noexcept {
  return needs_matrix(kind);
}

std::uint64_t cache_key(const Request& request) {
  ContentHasher h;
  h.add_string(kCacheSchemaTag);
  h.add_u64(static_cast<std::uint64_t>(request.kind));
  if (request.etc) {
    const core::EtcMatrix& etc = *request.etc;
    h.add_u64(etc.task_count()).add_u64(etc.machine_count());
    for (const double v : etc.values().data()) h.add_double(v);
    for (const auto& name : etc.task_names()) h.add_string(name);
    for (const auto& name : etc.machine_names()) h.add_string(name);
  }
  if (request.kind == RequestKind::schedule) {
    h.add_string(request.heuristic);
    h.add_u64(request.seed);
    h.add_u64(request.tasks.size());
    for (const std::size_t t : request.tasks) h.add_u64(t);
  }
  if (request.kind == RequestKind::whatif) {
    h.add_u64(static_cast<std::uint64_t>(request.whatif_machines));
    h.add_u64(static_cast<std::uint64_t>(request.whatif_tasks));
  }
  return h.digest();
}

std::string compute_result(const Request& request) {
  switch (request.kind) {
    case RequestKind::characterize: {
      const auto ecs = request.etc->to_ecs();
      return io::to_json(core::characterize(ecs), ecs);
    }
    case RequestKind::measures:
      return io::to_json(core::measure_set(request.etc->to_ecs()));
    case RequestKind::schedule: return schedule_result(request);
    case RequestKind::whatif: return whatif_result(request);
    case RequestKind::stats:
    case RequestKind::update:
    case RequestKind::subscribe:
    case RequestKind::invalid: break;
  }
  throw ValueError("compute_result: kind has no computable result");
}

std::string ok_response(const std::string& id_json,
                        const std::string& result) {
  std::string out;
  out.reserve(id_json.size() + result.size() + 32);
  out += "{\"id\":";
  out += id_json;
  out += ",\"ok\":true,\"result\":";
  out += result;
  out += '}';
  return out;
}

std::string error_response(const std::string& id_json, int code,
                           const std::string& message) {
  std::ostringstream os;
  os << "{\"id\":" << id_json << ",\"ok\":false,\"error\":{\"code\":" << code
     << ",\"message\":\"" << io::json_escape(message) << "\"}}";
  return std::move(os).str();
}

}  // namespace hetero::svc
