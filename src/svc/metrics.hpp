// Metrics registry for the characterization service: lock-free counters and
// fixed-bucket latency histograms.
//
// Every mutation is a relaxed atomic increment — workers never share a
// cache line intentionally (per-kind slots are padded) and never take a
// lock, so instrumentation cost stays in the nanoseconds while the server
// is saturated. Reads take a consistent-enough snapshot (counters are
// monotone; slight skew between related counters during a storm is
// acceptable for operational metrics).
//
// Histograms use power-of-two microsecond buckets: bucket b counts samples
// in [2^(b-1), 2^b) us (bucket 0 is < 1 us). 28 buckets span sub-micro to
// ~2 minutes, which covers queue waits and compute times for any matrix
// the service would admit.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace hetero::svc {

/// The request kinds the protocol understands (order is the wire order of
/// the stats report; `invalid` collects unparseable requests).
enum class RequestKind {
  characterize,
  measures,
  schedule,
  whatif,
  stats,
  update,
  subscribe,
  invalid,
};
inline constexpr std::size_t kRequestKindCount = 8;

/// Protocol token for a kind ("characterize", ..., "invalid").
const char* kind_name(RequestKind kind) noexcept;

/// Token -> kind; RequestKind::invalid for an unknown token.
RequestKind parse_kind(const std::string& token) noexcept;

/// Fixed-bucket latency histogram; record() is lock-free and wait-free.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 28;

  void record(std::uint64_t micros) noexcept;

  /// Plain-data copy for reporting.
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum_us = 0;
    std::uint64_t max_us = 0;

    double mean_us() const;
    /// Upper bucket bound (us) below which `q` of the samples fall;
    /// 0 when empty. q in [0, 1].
    std::uint64_t quantile_upper_us(double q) const;
  };
  Snapshot snapshot() const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

/// Counter + histogram registry, sliced per request kind. Shared by the
/// server and the one-shot CLI (--stats) so both report through one
/// instrumentation path.
class Metrics {
 public:
  struct KindCounters {
    std::atomic<std::uint64_t> received{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> cache_misses{0};
    LatencyHistogram queue_wait;
    LatencyHistogram compute;
  };

  KindCounters& kind(RequestKind k) noexcept {
    return per_kind_[static_cast<std::size_t>(k)];
  }
  const KindCounters& kind(RequestKind k) const noexcept {
    return per_kind_[static_cast<std::size_t>(k)];
  }

  void count_rejected_full() noexcept {
    rejected_full_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_rejected_deadline() noexcept {
    rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Connection-level gauges, maintained by the socket front ends (both the
  /// blocking accept loop and the epoll event loop). `active` is the only
  /// non-monotone member (incremented on accept, decremented on close).
  struct ConnectionGauges {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> active{0};
    std::atomic<std::uint64_t> timed_out{0};
    std::atomic<std::uint64_t> backpressure_closed{0};
    std::atomic<std::uint64_t> oversized_frames{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
  };
  ConnectionGauges& connections() noexcept { return connections_; }
  const ConnectionGauges& connections() const noexcept { return connections_; }

  /// Plain-data snapshot of the whole registry.
  struct Snapshot {
    struct Kind {
      std::string name;
      std::uint64_t received = 0;
      std::uint64_t completed = 0;
      std::uint64_t errors = 0;
      std::uint64_t cache_hits = 0;
      std::uint64_t cache_misses = 0;
      LatencyHistogram::Snapshot queue_wait;
      LatencyHistogram::Snapshot compute;
    };
    std::vector<Kind> kinds;  // one per RequestKind, in enum order
    std::uint64_t rejected_full = 0;
    std::uint64_t rejected_deadline = 0;
    struct Connections {
      std::uint64_t accepted = 0;
      std::uint64_t active = 0;
      std::uint64_t timed_out = 0;
      std::uint64_t backpressure_closed = 0;
      std::uint64_t oversized_frames = 0;
      std::uint64_t bytes_in = 0;
      std::uint64_t bytes_out = 0;
    } connections;
  };
  Snapshot snapshot() const;

 private:
  // Align per-kind slots out of each other's cache lines: a characterize
  // storm must not false-share with schedule counters.
  struct alignas(128) PaddedCounters : KindCounters {};
  std::array<PaddedCounters, kRequestKindCount> per_kind_{};
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> rejected_deadline_{0};
  ConnectionGauges connections_;
};

/// Machine-readable snapshot (the `stats` response payload).
std::string to_json(const Metrics::Snapshot& snapshot);

/// Console rendering (the shutdown dump and `hetero_cli --stats`). Kinds
/// with no traffic are omitted.
std::string render_text(const Metrics::Snapshot& snapshot);

}  // namespace hetero::svc
