// Async epoll front end for the characterization service.
//
// One EventLoopServer runs N event-loop workers (default 1). Each worker
// owns an epoll instance, its own SO_REUSEPORT listening socket on the
// shared port (the kernel load-balances accepts across workers), and the
// connections it accepted: non-blocking reads feed a resumable
// io::LineFramer per connection (arbitrary byte splits, oversized-line
// resync), decoded frames enter the shared Server, and responses are
// marshalled back to the owning loop thread through a completion queue +
// eventfd, then written through a bounded per-connection buffer.
//
// The Server behind the loop is unchanged: the same admission queue,
// deadline handling, sharded LRU cache, and compute ThreadPool as the
// blocking front ends, so responses are bit-identical to serve_tcp /
// serve_stream (asserted by the svc_equiv tests). What the loop adds:
//
//  - scale: one thread per worker regardless of connection count (the
//    blocking path burns a thread per connection);
//  - warm-hit fast path: cacheable requests whose cache shard is owned by
//    the accepting worker (consistent-hash ShardMap) are answered inline
//    on the loop thread on a hit, skipping the queue/pool round trip;
//  - raw-line memo: a small per-worker LRU keyed by the exact request
//    bytes short-circuits the JSON parse for verbatim-repeated requests
//    (the steady-state fleet re-characterization pattern). Entries are
//    exact-match (hash + full compare) copies of inline warm-hit
//    responses, so a memo hit is byte-identical to the cache hit it
//    memoized — and both to the cold compute, since compute_result is a
//    pure function of the request line. Deadline-bearing requests are
//    never memoized (their 408-vs-result outcome is time-dependent).
//  - backpressure: a connection whose peer stops draining responses has
//    its reads paused at the high-water mark and is closed at the hard
//    cap instead of buffering without bound;
//  - idle/half-open timeouts and graceful shutdown (stop accepting, stop
//    reading, flush every in-flight response within a grace budget).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <thread>
#include <vector>

#include "svc/server.hpp"

namespace hetero::svc {

struct EventLoopOptions {
  /// 0 = ephemeral (the bound port is reported by port() after start()).
  std::uint16_t port = 0;
  /// Event-loop threads, each with its own SO_REUSEPORT listener; 0 = 1.
  std::size_t workers = 1;
  /// Frames longer than this are answered with a 400 and discarded up to
  /// the next newline (the connection survives).
  std::size_t max_frame_bytes = 1 << 20;
  /// Pause reading a connection whose unsent responses exceed this.
  std::size_t write_high_water = 4u << 20;
  /// Close a connection whose unsent responses exceed this.
  std::size_t write_close_limit = 64u << 20;
  /// SO_SNDBUF for accepted sockets; 0 = kernel default. Bounding it keeps
  /// per-connection kernel memory predictable at 10k connections and makes
  /// the user-space backpressure limits the binding ones.
  std::size_t send_buffer_bytes = 0;
  /// Close connections with no read/write progress and no in-flight
  /// compute for this long (also reaps half-open peers). 0 = never.
  std::chrono::milliseconds idle_timeout{30000};
  /// Graceful-shutdown budget for flushing in-flight responses.
  std::chrono::milliseconds drain_grace{5000};
  /// Per-worker raw-line memo entries; 0 disables the memo.
  std::size_t line_memo_entries = 64;
  /// Serve warm cache hits inline on the loop thread (shard-ownership
  /// gated). Off = every request takes the queue/pool path.
  bool inline_warm_hits = true;
};

class EventLoopServer {
 public:
  /// `server` must outlive this object.
  EventLoopServer(Server& server, EventLoopOptions options = {});
  ~EventLoopServer();

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  /// Binds the listeners and starts the worker threads. False on setup
  /// failure (diagnostic to `log`).
  bool start(std::ostream& log);

  /// Blocks until every worker has exited (i.e. until request_shutdown()
  /// and the drain complete).
  void wait();

  /// start() + wait(); returns 0 on clean shutdown, 1 on setup failure.
  int run(std::ostream& log);

  /// Initiates graceful shutdown: stop accepting, stop reading, flush
  /// in-flight responses (within drain_grace), then exit the loops.
  /// Async-signal-safe (atomic flag + eventfd writes); callable from any
  /// thread or from a signal handler.
  void request_shutdown() noexcept;

  /// The port the listeners are bound to (meaningful after start()).
  std::uint16_t port() const noexcept { return bound_port_; }

  /// Worker count actually running.
  std::size_t worker_count() const noexcept { return workers_.size(); }

 private:
  struct Worker;
  void loop(Worker& w);

  Server& server_;
  EventLoopOptions options_;
  ShardMap shard_map_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::uint16_t bound_port_ = 0;
  bool started_ = false;
};

}  // namespace hetero::svc
