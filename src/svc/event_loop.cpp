#include "svc/event_loop.hpp"

#include <ostream>

#include "svc/net_util.hpp"

#if defined(__linux__)
#define HETERO_SVC_HAVE_EPOLL 1
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "io/json.hpp"
#include "svc/session.hpp"
#include "support/lock_ranks.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"
#endif

namespace hetero::svc {

#if HETERO_SVC_HAVE_EPOLL

namespace {

using Clock = std::chrono::steady_clock;

// epoll_event.data.u64 tags for the two non-connection descriptors;
// connection ids start above them.
constexpr std::uint64_t kTagListener = 0;
constexpr std::uint64_t kTagWakeup = 1;
constexpr std::uint64_t kFirstConnId = 2;

// 8-bytes-at-a-time FNV-style hash for raw request lines. The memo
// verifies candidates with a full byte compare, so this only needs to
// spread well, not be collision-free.
std::uint64_t hash_line(std::string_view s) noexcept {
  std::uint64_t h = 1469598103934665603ull ^ (s.size() * 1099511628211ull);
  std::size_t i = 0;
  for (; i + 8 <= s.size(); i += 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, s.data() + i, 8);
    h = (h ^ chunk) * 1099511628211ull;
    h ^= h >> 29;
  }
  for (; i < s.size(); ++i) h = (h ^ static_cast<unsigned char>(s[i])) *
                               1099511628211ull;
  return h;
}

bool is_blank(std::string_view line) noexcept {
  return line.find_first_not_of(" \t\r") == std::string_view::npos;
}

/// Worker-local exact-match LRU of raw request line -> response. Single
/// threaded (loop thread only), so no locks; eviction is oldest-stamp.
class LineMemo {
 public:
  explicit LineMemo(std::size_t capacity) : capacity_(capacity) {}

  struct Entry {
    std::uint64_t hash = 0;
    std::uint64_t stamp = 0;
    RequestKind kind = RequestKind::invalid;
    std::string line;
    std::string response;
  };

  const Entry* find(std::uint64_t hash, std::string_view line) noexcept {
    for (auto& e : entries_) {
      if (e.hash == hash && e.line == line) {
        e.stamp = ++clock_;
        return &e;
      }
    }
    return nullptr;
  }

  void put(std::uint64_t hash, std::string line, std::string response,
           RequestKind kind) {
    if (capacity_ == 0) return;
    if (entries_.size() < capacity_) {
      entries_.push_back(Entry{hash, ++clock_, kind, std::move(line),
                               std::move(response)});
      return;
    }
    auto oldest = entries_.begin();
    for (auto it = entries_.begin() + 1; it != entries_.end(); ++it)
      if (it->stamp < oldest->stamp) oldest = it;
    *oldest = Entry{hash, ++clock_, kind, std::move(line),
                    std::move(response)};
  }

 private:
  std::size_t capacity_;
  std::uint64_t clock_ = 0;
  std::vector<Entry> entries_;
};

int make_listener(std::uint16_t port, std::ostream& log) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    log << "svc: socket() failed: " << net::errno_string(errno) << '\n';
    return -1;
  }
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);
  // Every worker binds its own listener to the shared port; the kernel
  // hashes incoming connections across them (the shared-accept model).
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &enable, sizeof enable);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    log << "svc: bind() to port " << port
        << " failed: " << net::errno_string(errno) << '\n';
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 1024) < 0) {
    log << "svc: listen() failed: " << net::errno_string(errno) << '\n';
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

// Completion channel from pool workers back to the owning loop thread.
// Response callbacks hold it by shared_ptr, so a completion arriving after
// the loop exited (or after its connection died) still has a live queue to
// land in — it is simply never delivered.
struct WorkerChannel {
  support::Mutex mutex{support::kRankWorkerChannel, "worker-channel"};
  std::vector<std::pair<std::uint64_t, std::string>> completions
      HETERO_GUARDED_BY(mutex);
  int wake_fd = -1;

  ~WorkerChannel() {
    if (wake_fd >= 0) ::close(wake_fd);
  }

  void post(std::uint64_t conn_id, std::string response) {
    {
      const support::MutexLock lock(mutex);
      completions.emplace_back(conn_id, std::move(response));
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(wake_fd, &one, sizeof one);
  }

  /// Swaps out everything posted so far (the loop thread's drain step).
  std::vector<std::pair<std::uint64_t, std::string>> take() {
    std::vector<std::pair<std::uint64_t, std::string>> batch;
    const support::MutexLock lock(mutex);
    batch.swap(completions);
    return batch;
  }

  void wake() noexcept {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(wake_fd, &one, sizeof one);
  }
};

struct EventLoopServer::Worker {
  std::size_t index = 0;
  int epoll_fd = -1;
  int listen_fd = -1;
  std::shared_ptr<WorkerChannel> channel;
  LineMemo memo{0};

  struct Conn {
    int fd = -1;
    io::LineFramer framer;
    std::string outbuf;
    std::size_t out_off = 0;
    std::size_t in_flight = 0;  // responses owed by the pool
    bool reading_paused = false;
    bool peer_closed = false;  // recv saw EOF; flush what is owed, then close
    bool want_write = false;   // EPOLLOUT armed
    Clock::time_point last_activity{};
    // Per-connection streaming session (subscribe/update state). Created
    // at accept: the empty session is a mutex plus two empty optionals,
    // and update/subscribe frames need it before the line is parsed.
    std::unique_ptr<StreamSession> session;
  };
  std::unordered_map<std::uint64_t, Conn> conns;
  std::uint64_t next_conn_id = kFirstConnId;
  std::size_t in_flight_total = 0;
  bool draining = false;  // graceful shutdown in progress
  Clock::time_point drain_deadline{};
  Clock::time_point last_sweep{};

  ~Worker() {
    for (auto& [id, conn] : conns) ::close(conn.fd);
    if (listen_fd >= 0) ::close(listen_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
  }
};

EventLoopServer::EventLoopServer(Server& server, EventLoopOptions options)
    : server_(server),
      options_(options),
      shard_map_(server.cache().shard_count(),
                 options.workers == 0 ? 1 : options.workers) {
  if (options_.workers == 0) options_.workers = 1;
}

EventLoopServer::~EventLoopServer() {
  request_shutdown();
  wait();
}

bool EventLoopServer::start(std::ostream& log) {
  if (started_) return false;
  net::ignore_sigpipe();
  net::raise_nofile_limit();

  for (std::size_t w = 0; w < options_.workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->index = w;
    worker->memo = LineMemo(options_.line_memo_entries);
    // Worker 0 may bind an ephemeral port; the rest join it via REUSEPORT.
    worker->listen_fd = make_listener(
        w == 0 ? options_.port : bound_port_, log);
    if (worker->listen_fd < 0) {
      workers_.clear();
      return false;
    }
    if (w == 0) {
      sockaddr_in addr{};
      socklen_t len = sizeof addr;
      if (::getsockname(worker->listen_fd,
                        reinterpret_cast<sockaddr*>(&addr), &len) == 0)
        bound_port_ = ntohs(addr.sin_port);
      else
        bound_port_ = options_.port;
    }
    worker->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    worker->channel = std::make_shared<WorkerChannel>();
    worker->channel->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (worker->epoll_fd < 0 || worker->channel->wake_fd < 0) {
      log << "svc: epoll/eventfd setup failed: " << net::errno_string(errno)
          << '\n';
      workers_.clear();
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTagListener;
    ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->listen_fd, &ev);
    ev.data.u64 = kTagWakeup;
    ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->channel->wake_fd,
                &ev);
    workers_.push_back(std::move(worker));
  }

  log << "svc: listening on port " << bound_port_ << " ("
      << options_.workers << (options_.workers == 1 ? " worker)" : " workers)")
      << '\n';
  threads_.reserve(workers_.size());
  for (auto& worker : workers_)
    threads_.emplace_back([this, w = worker.get()] { loop(*w); });
  started_ = true;
  return true;
}

void EventLoopServer::wait() {
  for (auto& t : threads_)
    if (t.joinable()) t.join();
}

int EventLoopServer::run(std::ostream& log) {
  if (!start(log)) return 1;
  wait();
  return 0;
}

void EventLoopServer::request_shutdown() noexcept {
  stop_.store(true, std::memory_order_release);
  for (auto& worker : workers_)
    if (worker->channel && worker->channel->wake_fd >= 0)
      worker->channel->wake();
}

void EventLoopServer::loop(Worker& w) {
  auto& gauges = server_.metrics().connections();
  const std::size_t inline_worker =
      options_.inline_warm_hits ? w.index : shard_map_.worker_count();

  const auto update_interest = [&](std::uint64_t id, Worker::Conn& conn) {
    epoll_event ev{};
    ev.data.u64 = id;
    ev.events = 0;
    if (!conn.reading_paused && !conn.peer_closed && !w.draining)
      ev.events |= EPOLLIN;
    if (conn.want_write) ev.events |= EPOLLOUT;
    ::epoll_ctl(w.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  };

  const auto close_conn = [&](std::uint64_t id) {
    const auto it = w.conns.find(id);
    if (it == w.conns.end()) return;
    ::epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, it->second.fd, nullptr);
    ::close(it->second.fd);
    w.conns.erase(it);
    gauges.active.fetch_sub(1, std::memory_order_relaxed);
  };

  // Flushes as much of conn.outbuf as the socket accepts. Returns false
  // when the connection died and was closed.
  const auto try_flush = [&](std::uint64_t id, Worker::Conn& conn) -> bool {
    while (conn.out_off < conn.outbuf.size()) {
      const auto n = ::send(conn.fd, conn.outbuf.data() + conn.out_off,
                            conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(id);
        return false;
      }
      conn.out_off += static_cast<std::size_t>(n);
      gauges.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                 std::memory_order_relaxed);
      conn.last_activity = Clock::now();
    }
    if (conn.out_off == conn.outbuf.size()) {
      conn.outbuf.clear();
      conn.out_off = 0;
    } else if (conn.out_off > (1u << 20) &&
               conn.out_off >= conn.outbuf.size() / 2) {
      conn.outbuf.erase(0, conn.out_off);
      conn.out_off = 0;
    }
    const std::size_t pending = conn.outbuf.size() - conn.out_off;
    const bool want_write = pending > 0;
    const bool should_pause = pending > options_.write_high_water;
    const bool should_resume =
        conn.reading_paused && pending <= options_.write_high_water / 2;
    if (want_write != conn.want_write || should_pause || should_resume) {
      conn.want_write = want_write;
      if (should_pause) conn.reading_paused = true;
      if (should_resume) conn.reading_paused = false;
      update_interest(id, conn);
    }
    if (conn.peer_closed && pending == 0 && conn.in_flight == 0) {
      close_conn(id);
      return false;
    }
    return true;
  };

  // Queues one response line on the connection; enforces the hard cap.
  const auto deliver = [&](std::uint64_t id, Worker::Conn& conn,
                           std::string_view response) -> bool {
    if (conn.outbuf.empty()) {
      // Nothing queued ahead: write straight from the response buffer
      // (line + newline as one sendmsg) and spill only the unsent tail,
      // skipping a full copy in the common drained-peer case (the warm
      // path pushes ~40 KB per response, so that copy is a measurable
      // share of peak throughput).
      char nl = '\n';
      std::size_t off = 0;  // across response + the trailing newline
      const std::size_t total = response.size() + 1;
      while (off < total) {
        iovec iov[2];
        int iov_count = 0;
        if (off < response.size()) {
          iov[iov_count].iov_base =
              const_cast<char*>(response.data()) + off;
          iov[iov_count].iov_len = response.size() - off;
          ++iov_count;
        }
        iov[iov_count].iov_base = &nl;
        iov[iov_count].iov_len = 1;
        ++iov_count;
        msghdr msg{};
        msg.msg_iov = iov;
        msg.msg_iovlen = static_cast<std::size_t>(iov_count);
        const auto n = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          close_conn(id);
          return false;
        }
        off += static_cast<std::size_t>(n);
        gauges.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                   std::memory_order_relaxed);
      }
      conn.last_activity = Clock::now();
      if (off == total) return true;
      if (off < response.size()) {
        conn.outbuf.assign(response.substr(off));
        conn.outbuf.push_back('\n');
      }
      // off == response.size(): only the newline is still owed.
      if (off == response.size()) conn.outbuf.assign(1, '\n');
      conn.out_off = 0;
      return try_flush(id, conn);
    }
    conn.outbuf.reserve(conn.outbuf.size() + response.size() + 1);
    conn.outbuf.append(response);
    conn.outbuf.push_back('\n');
    if (conn.outbuf.size() - conn.out_off > options_.write_close_limit) {
      gauges.backpressure_closed.fetch_add(1, std::memory_order_relaxed);
      close_conn(id);
      return false;
    }
    return try_flush(id, conn);
  };

  // Decodes and dispatches every complete frame buffered on `conn`.
  const auto process_frames = [&](std::uint64_t id,
                                  Worker::Conn& conn) -> bool {
    while (auto frame = conn.framer.next()) {
      if (w.draining) {
        // Shutdown hit between decode and dispatch: answer explicitly
        // instead of dropping a frame the peer already transmitted.
        if (!is_blank(frame->line) &&
            !deliver(id, conn,
                     error_response("null", kErrUnavailable,
                                    "service shutting down")))
          return false;
        continue;
      }
      if (frame->oversized) {
        gauges.oversized_frames.fetch_add(1, std::memory_order_relaxed);
        if (!deliver(id, conn,
                     error_response(
                         "null", kErrBadRequest,
                         "frame exceeds " +
                             std::to_string(options_.max_frame_bytes) +
                             " bytes")))
          return false;
        continue;
      }
      if (is_blank(frame->line)) continue;

      const std::uint64_t line_hash = hash_line(frame->line);
      if (const auto* memo = w.memo.find(line_hash, frame->line)) {
        // Byte-identical replay of a previous inline warm hit; account it
        // exactly like the cache hit it memoized.
        auto& k = server_.metrics().kind(memo->kind);
        k.received.fetch_add(1, std::memory_order_relaxed);
        k.cache_hits.fetch_add(1, std::memory_order_relaxed);
        k.queue_wait.record(0);
        k.compute.record(0);
        k.completed.fetch_add(1, std::memory_order_relaxed);
        if (!deliver(id, conn, memo->response)) return false;
        continue;
      }

      Server::FastPathInfo info;
      auto response = server_.submit_fast(
          frame->line,
          [channel = w.channel, id](std::string r) {
            channel->post(id, std::move(r));
          },
          &shard_map_, inline_worker, &info, conn.session.get());
      if (response) {
        if (info.inline_hit && !info.had_deadline)
          w.memo.put(line_hash, std::move(frame->line), *response, info.kind);
        if (!deliver(id, conn, *response)) return false;
      } else {
        ++conn.in_flight;
        ++w.in_flight_total;
      }
    }
    return true;
  };

  const auto handle_readable = [&](std::uint64_t id, Worker::Conn& conn) {
    char chunk[65536];
    std::size_t budget = 4;  // reads per readiness; LT epoll re-notifies
    while (budget-- > 0) {
      const auto n = ::recv(conn.fd, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(id);
        return;
      }
      if (n == 0) {
        conn.peer_closed = true;
        if (conn.in_flight == 0 && conn.outbuf.size() == conn.out_off)
          close_conn(id);
        else
          update_interest(id, conn);  // stop reading; flush what is owed
        return;
      }
      gauges.bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
      conn.last_activity = Clock::now();
      conn.framer.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
      if (!process_frames(id, conn)) return;
      if (static_cast<std::size_t>(n) < sizeof chunk) break;
    }
  };

  const auto handle_accept = [&] {
    while (true) {
      const int fd = ::accept4(w.listen_fd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        break;  // EAGAIN, or transient EMFILE/ENFILE: retry on next wake
      }
      const int enable = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof enable);
      if (options_.send_buffer_bytes != 0) {
        const int sndbuf = static_cast<int>(options_.send_buffer_bytes);
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof sndbuf);
      }
      const std::uint64_t id = w.next_conn_id++;
      Worker::Conn& conn = w.conns[id];
      conn.fd = fd;
      conn.framer = io::LineFramer(options_.max_frame_bytes);
      conn.session = std::make_unique<StreamSession>();
      conn.last_activity = Clock::now();
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = id;
      ::epoll_ctl(w.epoll_fd, EPOLL_CTL_ADD, fd, &ev);
      gauges.accepted.fetch_add(1, std::memory_order_relaxed);
      gauges.active.fetch_add(1, std::memory_order_relaxed);
    }
  };

  const auto drain_completions = [&] {
    auto batch = w.channel->take();
    for (auto& [id, response] : batch) {
      --w.in_flight_total;
      const auto it = w.conns.find(id);
      if (it == w.conns.end()) continue;  // connection died while computing
      Worker::Conn& conn = it->second;
      if (conn.in_flight > 0) --conn.in_flight;
      deliver(id, conn, response);
    }
  };

  const auto sweep_idle = [&](Clock::time_point now) {
    if (options_.idle_timeout.count() <= 0) return;
    if (now - w.last_sweep < options_.idle_timeout / 4) return;
    w.last_sweep = now;
    std::vector<std::uint64_t> victims;
    for (auto& [id, conn] : w.conns) {
      if (conn.in_flight > 0) continue;  // compute in progress, not idle
      if (now - conn.last_activity > options_.idle_timeout)
        victims.push_back(id);
    }
    for (const std::uint64_t id : victims) {
      gauges.timed_out.fetch_add(1, std::memory_order_relaxed);
      close_conn(id);
    }
  };

  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  while (true) {
    if (stop_.load(std::memory_order_acquire) && !w.draining) {
      // Begin graceful drain: no new connections, no new requests; every
      // admitted request still gets its response flushed.
      w.draining = true;
      w.drain_deadline = Clock::now() + options_.drain_grace;
      ::epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, w.listen_fd, nullptr);
      for (auto& [id, conn] : w.conns) update_interest(id, conn);
    }
    if (w.draining) {
      bool flushed = w.in_flight_total == 0;
      if (flushed)
        for (auto& [id, conn] : w.conns)
          if (conn.outbuf.size() != conn.out_off) {
            flushed = false;
            break;
          }
      if (flushed || Clock::now() > w.drain_deadline) break;
    }

    const int timeout_ms = w.draining ? 50 : 250;
    const int n = ::epoll_wait(w.epoll_fd, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kTagListener) {
        if (!w.draining) handle_accept();
        continue;
      }
      if (tag == kTagWakeup) {
        std::uint64_t drained;
        while (::read(w.channel->wake_fd, &drained, sizeof drained) > 0) {
        }
        drain_completions();
        continue;
      }
      const auto it = w.conns.find(tag);
      if (it == w.conns.end()) continue;  // closed earlier this batch
      Worker::Conn& conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        // Give owed responses one last flush attempt, then drop.
        if (conn.outbuf.size() != conn.out_off) try_flush(tag, conn);
        close_conn(tag);
        continue;
      }
      if (events[i].events & EPOLLOUT) {
        if (!try_flush(tag, conn)) continue;
      }
      if (events[i].events & EPOLLIN) handle_readable(tag, conn);
    }
    drain_completions();
    sweep_idle(Clock::now());
  }

  // Loop exit: close whatever remains (drain completed or grace expired).
  std::vector<std::uint64_t> remaining;
  remaining.reserve(w.conns.size());
  for (auto& [id, conn] : w.conns) remaining.push_back(id);
  for (const std::uint64_t id : remaining) close_conn(id);
}

#else  // !HETERO_SVC_HAVE_EPOLL

struct EventLoopServer::Worker {};

EventLoopServer::EventLoopServer(Server& server, EventLoopOptions options)
    : server_(server),
      options_(options),
      shard_map_(server.cache().shard_count(),
                 options.workers == 0 ? 1 : options.workers) {}

EventLoopServer::~EventLoopServer() = default;

bool EventLoopServer::start(std::ostream& log) {
  log << "svc: epoll event loop is not supported on this platform\n";
  return false;
}

void EventLoopServer::wait() {}

int EventLoopServer::run(std::ostream& log) {
  start(log);
  return 1;
}

void EventLoopServer::request_shutdown() noexcept {}

#endif

}  // namespace hetero::svc
