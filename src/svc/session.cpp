#include "svc/session.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "base/error.hpp"
#include "io/json.hpp"

namespace hetero::svc {
namespace {

// Streaming sessions convert on the ETC/ECS boundary exactly like
// EtcMatrix::to_ecs (elementwise reciprocal), so a subscribe followed by
// zero updates characterizes the same ECS matrix a `measures` request
// would see.
double to_ecs(double etc_value) { return 1.0 / etc_value; }

std::vector<double> to_ecs_vector(const std::vector<double>& etc_values,
                                  const char* what) {
  std::vector<double> ecs;
  ecs.reserve(etc_values.size());
  for (const double v : etc_values) {
    detail::require_value(v > 0.0 && std::isfinite(v), what);
    ecs.push_back(to_ecs(v));
  }
  return ecs;
}

}  // namespace

bool StreamSession::active() const {
  const support::MutexLock lock(mutex_);
  return view_.has_value();
}

std::string StreamSession::handle(const Request& request) {
  const support::MutexLock lock(mutex_);
  if (request.kind == RequestKind::subscribe) return apply_subscribe(request);
  detail::require_value(request.kind == RequestKind::update,
                        "session: not a streaming request kind");
  return apply_update(request);
}

std::string StreamSession::apply_subscribe(const Request& request) {
  const core::EtcMatrix& etc = *request.etc;
  detail::require_value(
      !etc.values().empty() && etc.values().all_positive() &&
          !etc.values().has_nonfinite(),
      "subscribe: the streamed view needs a fully-runnable environment — "
      "every ETC entry must be positive and finite");
  core::MeasureViewOptions options;
  options.error_budget = request.stream_error_budget;
  core::EtcEstimatorOptions est;
  est.alpha = request.estimator_alpha;
  est.min_rel_change = request.estimator_min_rel_change;
  // Replace-semantics: a second subscribe discards the previous view.
  view_.emplace(etc.to_ecs().values(), options);
  estimator_.emplace(etc.values(), est);
  return result_payload(/*fed=*/0, /*observed=*/0,
                        view_->stats().cold_refreshes);
}

std::string StreamSession::apply_update(const Request& request) {
  detail::require_value(view_.has_value(),
                        "update: no active subscription on this connection; "
                        "send a subscribe request first");
  const std::uint64_t cold_before = view_->stats().cold_refreshes;
  std::uint64_t fed = 0;

  for (const std::size_t task : request.remove_tasks) {
    view_->remove_task(task);
    estimator_->remove_task(task);
  }
  for (const std::size_t machine : request.remove_machines) {
    view_->remove_machine(machine);
    estimator_->remove_machine(machine);
  }
  for (const std::vector<double>& row : request.add_tasks) {
    const std::vector<double> ecs = to_ecs_vector(
        row, "update: add_tasks entries must be positive and finite");
    view_->add_task(ecs);
    estimator_->add_task(row);
  }
  for (const std::vector<double>& col : request.add_machines) {
    const std::vector<double> ecs = to_ecs_vector(
        col, "update: add_machines entries must be positive and finite");
    view_->add_machine(ecs);
    estimator_->add_machine(col);
  }

  if (!request.set.empty()) {
    std::vector<core::CellDelta> deltas;
    deltas.reserve(request.set.size());
    for (const io::CellUpdate& u : request.set) {
      detail::require_value(u.value > 0.0 && std::isfinite(u.value),
                            "update: set values must be positive and finite "
                            "ETC entries");
      deltas.push_back(core::CellDelta{u.task, u.machine, to_ecs(u.value)});
    }
    // One batched re-evaluation for the whole set list; the estimator
    // adopts each value as authoritative afterwards (the view validated
    // the indices).
    view_->set_entries(deltas);
    for (const io::CellUpdate& u : request.set)
      estimator_->set(u.task, u.machine, u.value);
  }

  if (!request.observe.empty()) {
    std::vector<core::CellDelta> deltas;
    for (const io::CellUpdate& u : request.observe) {
      const auto revised = estimator_->observe(u.task, u.machine, u.value);
      if (revised) deltas.push_back(
          core::CellDelta{u.task, u.machine, to_ecs(*revised)});
    }
    // Only materially-moved cells reach the view; a noisy-but-stationary
    // stream costs zero re-evaluations.
    if (!deltas.empty()) view_->set_entries(deltas);
    fed = deltas.size();
  }

  return result_payload(fed, request.observe.size(), cold_before);
}

std::string StreamSession::result_payload(std::uint64_t fed,
                                          std::uint64_t observed,
                                          std::uint64_t cold_before) {
  const core::MeasureView::Stats& s = view_->stats();
  std::ostringstream os;
  os << "{\"measures\":" << io::to_json(view_->current())
     << ",\"version\":" << s.version
     << ",\"warm_updates\":" << s.warm_updates
     << ",\"cold_refreshes\":" << s.cold_refreshes
     << ",\"refreshed\":" << (s.cold_refreshes > cold_before ? "true" : "false")
     << ",\"tasks\":" << view_->tasks()
     << ",\"machines\":" << view_->machines()
     << ",\"observed\":" << observed << ",\"fed\":" << fed << '}';
  return std::move(os).str();
}

}  // namespace hetero::svc
