#include "svc/metrics.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <utility>

#include "io/json.hpp"
#include "io/table.hpp"

namespace hetero::svc {
namespace {

constexpr const char* kKindNames[kRequestKindCount] = {
    "characterize", "measures", "schedule", "whatif",
    "stats",        "update",   "subscribe", "invalid"};

// Bucket b covers [2^(b-1), 2^b) microseconds; bucket 0 is < 1 us.
std::size_t bucket_of(std::uint64_t micros) noexcept {
  const auto width = static_cast<std::size_t>(std::bit_width(micros));
  return std::min(width, LatencyHistogram::kBuckets - 1);
}

std::uint64_t bucket_upper_us(std::size_t b) noexcept {
  return std::uint64_t{1} << b;
}

}  // namespace

const char* kind_name(RequestKind kind) noexcept {
  return kKindNames[static_cast<std::size_t>(kind)];
}

RequestKind parse_kind(const std::string& token) noexcept {
  for (std::size_t i = 0; i + 1 < kRequestKindCount; ++i)
    if (token == kKindNames[i]) return static_cast<RequestKind>(i);
  return RequestKind::invalid;
}

void LatencyHistogram::record(std::uint64_t micros) noexcept {
  buckets_[bucket_of(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(micros, std::memory_order_relaxed);
  // Monotone max via CAS loop; contention is rare (only new maxima race).
  std::uint64_t seen = max_us_.load(std::memory_order_relaxed);
  while (micros > seen &&
         !max_us_.compare_exchange_weak(seen, micros,
                                        std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const noexcept {
  Snapshot s;
  for (std::size_t b = 0; b < kBuckets; ++b)
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_us = sum_us_.load(std::memory_order_relaxed);
  s.max_us = max_us_.load(std::memory_order_relaxed);
  return s;
}

double LatencyHistogram::Snapshot::mean_us() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum_us) / static_cast<double>(count);
}

std::uint64_t LatencyHistogram::Snapshot::quantile_upper_us(double q) const {
  if (count == 0) return 0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= target) return bucket_upper_us(b);
  }
  return bucket_upper_us(kBuckets - 1);
}

Metrics::Snapshot Metrics::snapshot() const {
  Snapshot s;
  s.kinds.reserve(kRequestKindCount);
  for (std::size_t i = 0; i < kRequestKindCount; ++i) {
    const KindCounters& c = per_kind_[i];
    Snapshot::Kind k;
    k.name = kKindNames[i];
    k.received = c.received.load(std::memory_order_relaxed);
    k.completed = c.completed.load(std::memory_order_relaxed);
    k.errors = c.errors.load(std::memory_order_relaxed);
    k.cache_hits = c.cache_hits.load(std::memory_order_relaxed);
    k.cache_misses = c.cache_misses.load(std::memory_order_relaxed);
    k.queue_wait = c.queue_wait.snapshot();
    k.compute = c.compute.snapshot();
    s.kinds.push_back(std::move(k));
  }
  s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  s.rejected_deadline = rejected_deadline_.load(std::memory_order_relaxed);
  s.connections.accepted =
      connections_.accepted.load(std::memory_order_relaxed);
  s.connections.active = connections_.active.load(std::memory_order_relaxed);
  s.connections.timed_out =
      connections_.timed_out.load(std::memory_order_relaxed);
  s.connections.backpressure_closed =
      connections_.backpressure_closed.load(std::memory_order_relaxed);
  s.connections.oversized_frames =
      connections_.oversized_frames.load(std::memory_order_relaxed);
  s.connections.bytes_in =
      connections_.bytes_in.load(std::memory_order_relaxed);
  s.connections.bytes_out =
      connections_.bytes_out.load(std::memory_order_relaxed);
  return s;
}

namespace {

void append_histogram_json(std::ostringstream& os,
                           const LatencyHistogram::Snapshot& h) {
  os << "{\"count\":" << h.count << ",\"mean_us\":"
     << io::json_number(h.mean_us()) << ",\"max_us\":" << h.max_us
     << ",\"p50_us\":" << h.quantile_upper_us(0.50)
     << ",\"p90_us\":" << h.quantile_upper_us(0.90)
     << ",\"p99_us\":" << h.quantile_upper_us(0.99) << ",\"buckets\":[";
  // Trailing empty buckets are elided to keep stats responses small.
  std::size_t last = 0;
  for (std::size_t b = 0; b < h.buckets.size(); ++b)
    if (h.buckets[b] != 0) last = b + 1;
  for (std::size_t b = 0; b < last; ++b)
    os << (b ? "," : "") << h.buckets[b];
  os << "]}";
}

}  // namespace

std::string to_json(const Metrics::Snapshot& snapshot) {
  std::ostringstream os;
  os << "{\"kinds\":{";
  for (std::size_t i = 0; i < snapshot.kinds.size(); ++i) {
    const auto& k = snapshot.kinds[i];
    os << (i ? "," : "") << '"' << k.name << "\":{\"received\":" << k.received
       << ",\"completed\":" << k.completed << ",\"errors\":" << k.errors
       << ",\"cache_hits\":" << k.cache_hits
       << ",\"cache_misses\":" << k.cache_misses << ",\"queue_wait\":";
    append_histogram_json(os, k.queue_wait);
    os << ",\"compute\":";
    append_histogram_json(os, k.compute);
    os << '}';
  }
  os << "},\"rejected_full\":" << snapshot.rejected_full
     << ",\"rejected_deadline\":" << snapshot.rejected_deadline
     << ",\"connections\":{\"accepted\":" << snapshot.connections.accepted
     << ",\"active\":" << snapshot.connections.active
     << ",\"timed_out\":" << snapshot.connections.timed_out
     << ",\"backpressure_closed\":"
     << snapshot.connections.backpressure_closed
     << ",\"oversized_frames\":" << snapshot.connections.oversized_frames
     << ",\"bytes_in\":" << snapshot.connections.bytes_in
     << ",\"bytes_out\":" << snapshot.connections.bytes_out << "}}";
  return std::move(os).str();
}

std::string render_text(const Metrics::Snapshot& snapshot) {
  std::ostringstream os;
  io::Table t({"kind", "recv", "done", "err", "hit", "miss", "wait p50/p99 us",
               "compute p50/p99 us"});
  for (const auto& k : snapshot.kinds) {
    if (k.received == 0 && k.errors == 0) continue;
    t.add_row({k.name, std::to_string(k.received), std::to_string(k.completed),
               std::to_string(k.errors), std::to_string(k.cache_hits),
               std::to_string(k.cache_misses),
               std::to_string(k.queue_wait.quantile_upper_us(0.50)) + "/" +
                   std::to_string(k.queue_wait.quantile_upper_us(0.99)),
               std::to_string(k.compute.quantile_upper_us(0.50)) + "/" +
                   std::to_string(k.compute.quantile_upper_us(0.99))});
  }
  t.print(os);
  os << "rejected: " << snapshot.rejected_full << " queue-full, "
     << snapshot.rejected_deadline << " deadline-expired\n";
  const auto& c = snapshot.connections;
  if (c.accepted != 0) {
    os << "connections: " << c.accepted << " accepted, " << c.active
       << " active, " << c.timed_out << " timed-out, "
       << c.backpressure_closed << " backpressure-closed, "
       << c.oversized_frames << " oversized frames, " << c.bytes_in
       << " B in, " << c.bytes_out << " B out\n";
  }
  return std::move(os).str();
}

}  // namespace hetero::svc
