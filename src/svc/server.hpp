// The long-running characterization server: admission control, sharded
// result cache, metrics, and the worker pipeline tying them together.
//
// One Server owns one par::ThreadPool. submit() parses and admits a
// request on the calling thread (parse errors and queue-full rejections
// respond immediately), then hands it to the pool: exactly one worker job
// is enqueued per admitted request, so the pool is never blocked by an
// idle drain loop. Workers pop FIFO, re-check the deadline, consult the
// result cache, and compute on miss. Every submitted request receives
// exactly one response — overload produces an explicit 429-style error,
// never a silent drop.
//
// Front ends: serve_stream() speaks newline-delimited JSON over any
// istream/ostream pair (the stdin/stdout mode of hetero_served);
// serve_tcp() accepts TCP connections on a port and runs the same
// per-line protocol over each socket.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "parallel/thread_pool.hpp"
#include "svc/metrics.hpp"
#include "svc/protocol.hpp"
#include "svc/request_queue.hpp"
#include "svc/result_cache.hpp"

namespace hetero::svc {

class StreamSession;

struct ServerOptions {
  /// Worker threads; 0 = hardware_concurrency.
  std::size_t threads = 0;
  /// Admission-control depth: requests beyond this many queued are
  /// rejected with kErrQueueFull.
  std::size_t queue_depth = 256;
  /// Result-cache geometry (shards rounded up to a power of two).
  std::size_t cache_shards = 16;
  std::size_t cache_capacity_per_shard = 64;
  /// Applied when a request carries no deadline_ms; zero = no deadline.
  std::chrono::milliseconds default_deadline{0};
};

class Server {
 public:
  explicit Server(ServerOptions options = {});

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Closes admission and drains every already-admitted request (each gets
  /// its response) before the workers join.
  ~Server();

  /// Asynchronous entry point: parses, admits, and dispatches one request
  /// line (borrowed for the duration of the call; nothing retains it).
  /// `respond` is invoked exactly once — on the calling thread for
  /// parse errors, admission rejections, and stateful session requests
  /// (update/subscribe, computed inline against `session`), on a worker
  /// otherwise. It may be invoked concurrently with other requests'
  /// callbacks and must be thread-safe across requests. `session` nullptr
  /// means the front end has no per-connection session; update/subscribe
  /// then answer 400.
  void submit(const std::string& line, ResponseFn respond,
              StreamSession* session = nullptr);

  /// What submit_fast did with the request, for front ends that cache or
  /// account responses without re-parsing the line (the event loop's
  /// raw-line memo and per-kind metrics).
  struct FastPathInfo {
    RequestKind kind = RequestKind::invalid;
    /// The returned response is a warm cache hit served inline (true only
    /// when a value was returned and it is an ok response from the cache).
    bool inline_hit = false;
    /// The request carried a deadline (explicit or default) — its outcome
    /// is time-dependent and must not be memoized.
    bool had_deadline = false;
  };

  /// Event-loop entry point. Returns the response when it can be produced
  /// without the worker pool — parse errors (400), admission rejections
  /// (429), expired-on-arrival deadlines (408), and warm cache hits served
  /// inline on the calling thread; otherwise admits the request (with its
  /// content hash precomputed into the queue item) and returns nullopt,
  /// and `respond` fires exactly once on a pool worker. `respond` is never
  /// invoked when a value is returned.
  ///
  /// Warm hits are served inline only for cache shards the calling worker
  /// owns under `shard_map` (nullptr = own everything): each shard's mutex
  /// then stays on one loop thread in the steady state, so warm throughput
  /// scales with workers instead of bouncing a lock. Non-owned shards take
  /// the queue path and still hit the cache on the pool worker, so the
  /// response bytes are identical either way.
  /// Stateful session requests (update/subscribe) are computed inline
  /// against `session` and returned directly — with inline_hit left false,
  /// so a memoizing front end never replays them.
  std::optional<std::string> submit_fast(const std::string& line,
                                         ResponseFn respond,
                                         const ShardMap* shard_map = nullptr,
                                         std::size_t worker_index = 0,
                                         FastPathInfo* info = nullptr,
                                         StreamSession* session = nullptr);

  /// Synchronous entry point: full pipeline (cache included) on the
  /// calling thread, bypassing admission control. The cold and cached
  /// paths produce byte-identical responses. update/subscribe run against
  /// `session` (400 when nullptr).
  std::string handle(const std::string& line,
                     StreamSession* session = nullptr);

  /// Newline-delimited JSON loop: reads requests from `in` until EOF,
  /// writes one response line per request to `out` (completion order, not
  /// arrival order — clients correlate by id), and returns once every
  /// in-flight request has been answered.
  void serve_stream(std::istream& in, std::ostream& out);

  /// Listens on `port` (all interfaces) and serves each accepted
  /// connection with the per-line protocol. Blocks until the listening
  /// socket fails; returns 0 on clean shutdown, nonzero on setup failure
  /// (message goes to `log`).
  int serve_tcp(std::uint16_t port, std::ostream& log);

  Metrics& metrics() noexcept { return metrics_; }
  ResultCache& cache() noexcept { return cache_; }
  RequestQueue& queue() noexcept { return queue_; }
  par::ThreadPool& pool() noexcept { return pool_; }

 private:
  /// True when the request kind is stateful (update/subscribe) and must be
  /// computed inline against a session, never queued/cached/memoized.
  static bool is_session_kind(RequestKind kind) noexcept;
  /// Inline session pipeline: computes against `session` on the calling
  /// thread (400 when nullptr) and returns the full response envelope.
  std::string session_response(const Request& request,
                               StreamSession* session);
  /// Runs cache lookup + compute for one popped item and responds.
  void process(const QueuedItem& item);
  /// Result payload for `request` (cache consulted for cacheable kinds);
  /// throws past `deadline` between stages. `key` is the precomputed
  /// content hash when the front end already hashed the request.
  std::string result_for(const Request& request,
                         std::chrono::steady_clock::time_point deadline,
                         std::optional<std::uint64_t> key);
  void drain_one();

  ServerOptions options_;
  Metrics metrics_;
  ResultCache cache_;
  RequestQueue queue_;
  par::ThreadPool pool_;  // last member: joins while the rest still exist
};

}  // namespace hetero::svc
