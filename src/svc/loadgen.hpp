// Non-blocking load-generator harness for the characterization service.
//
// One LoadGen thread drives up to tens of thousands of concurrent TCP
// client connections from a single epoll loop (mirroring the server's
// event-loop architecture, so neither side burns a thread per
// connection). Two arrival models:
//
//  - closed loop (the default): every client keeps `pipeline` requests in
//    flight and issues the next one the moment a response arrives — the
//    classic saturation benchmark, measuring peak sustainable throughput;
//  - open loop: clients issue requests on a fixed global schedule
//    (`open_loop_rps` across all clients) regardless of response arrival,
//    exposing queueing behaviour under a load the service does not
//    control.
//
// Every response line is validated (it must be a well-formed protocol
// envelope echoing ok:true/false); malformed lines, dropped responses
// (connection closed with requests still owed), and failed connects make
// the run fail loudly — report().ok is false and perf_service exits
// non-zero, so a benchmark number can never paper over a broken server.
//
// Latency is recorded per request into the metrics registry's
// LatencyHistogram (power-of-two microsecond buckets), and the report
// carries p50/p90/p99 from its snapshot. With pipeline > 1 the
// send-timestamp queue is matched to responses FIFO per connection, which
// is exact for in-order responses and a tight approximation otherwise
// (the service may complete out of order under load).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "svc/metrics.hpp"

namespace hetero::svc {

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Concurrent client connections.
  std::size_t clients = 100;
  /// Requests each client issues over the run (closed loop) or the cap on
  /// what the schedule may issue per client (open loop).
  std::size_t requests_per_client = 100;
  /// In-flight requests per connection in closed-loop mode.
  std::size_t pipeline = 1;
  /// 0 = closed loop; > 0 = open loop at this many requests/s aggregated
  /// across all clients.
  double open_loop_rps = 0.0;
  /// Lines every client sends once, in order, immediately after its
  /// connect and before the measured stream starts (e.g. a `subscribe`
  /// establishing a streaming session on the connection). Their responses
  /// are awaited but excluded from sent/received/latency; a non-ok
  /// prologue response counts as prologue_failures and fails the run.
  std::vector<std::string> prologue_lines;
  /// Abort the run (marking it failed) if it exceeds this wall budget.
  std::chrono::milliseconds time_limit{60000};
};

struct LoadGenReport {
  std::size_t clients = 0;
  std::size_t connect_failures = 0;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t ok_true = 0;    // "ok":true responses
  std::uint64_t ok_false = 0;   // well-formed protocol errors (408/429/...)
  std::uint64_t malformed = 0;  // lines that are not protocol envelopes
  std::uint64_t dropped = 0;    // sent - received at connection close
  std::uint64_t prologue_failures = 0;  // non-ok prologue responses
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  double elapsed_s = 0.0;
  double requests_per_s = 0.0;
  LatencyHistogram::Snapshot latency;
  bool timed_out = false;
  /// True only when every sent request produced a well-formed response
  /// and every connection was established.
  bool ok = false;

  /// Single-line JSON rendering (the perf_service --clients report).
  std::string to_json() const;
};

/// Runs one load-generation pass: `clients` connections to host:port, each
/// cycling through `request_lines` (round-robin per connection, offset by
/// connection index so concurrent clients do not send in lockstep).
/// Request lines must be complete NDJSON request objects WITHOUT the
/// trailing newline. Blocks until every client finished or failed.
LoadGenReport run_load(const std::vector<std::string>& request_lines,
                       const LoadGenOptions& options);

}  // namespace hetero::svc
