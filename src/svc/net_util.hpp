// Small POSIX socket helpers shared by the service front ends (blocking
// accept loop, epoll event loop, load-generator client harness). All are
// no-ops on platforms without BSD sockets.
#pragma once

#include <cstddef>
#include <cstring>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#define HETERO_SVC_HAVE_SOCKETS 1

#include <csignal>
#include <fcntl.h>
#include <sys/resource.h>

namespace hetero::svc::net {

/// Thread-safe strerror: std::strerror may return a pointer into shared
/// static storage, so concurrent event-loop workers logging setup failures
/// could race on it. This copies through strerror_r into a caller-owned
/// string instead.
inline std::string errno_string(int err) {
  char buf[256];
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  // GNU strerror_r: returns the message pointer (buf used only as backing).
  const char* msg = ::strerror_r(err, buf, sizeof buf);
  return std::string(msg != nullptr ? msg : "unknown error");
#else
  // POSIX strerror_r: fills buf, returns 0 on success.
  if (::strerror_r(err, buf, sizeof buf) != 0)
    return "error " + std::to_string(err);
  return std::string(buf);
#endif
}

/// A write into a half-closed socket must surface as EPIPE, not kill the
/// process. Idempotent; every socket front end calls it on startup (the
/// send paths additionally pass MSG_NOSIGNAL where available).
inline void ignore_sigpipe() noexcept {
  struct sigaction sa {};
  sa.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &sa, nullptr);
}

/// O_NONBLOCK on `fd`; returns false on fcntl failure.
inline bool set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Best-effort bump of RLIMIT_NOFILE to its hard limit (10k-connection
/// servers and clients outgrow the common 1024 soft default). Returns the
/// soft limit after the attempt.
inline std::size_t raise_nofile_limit() noexcept {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur < lim.rlim_max) {
    rlimit raised = lim;
    raised.rlim_cur = lim.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return static_cast<std::size_t>(lim.rlim_cur);
}

}  // namespace hetero::svc::net

#else

namespace hetero::svc::net {
inline void ignore_sigpipe() noexcept {}
inline bool set_nonblocking(int) noexcept { return false; }
inline std::size_t raise_nofile_limit() noexcept { return 0; }
}  // namespace hetero::svc::net

#endif
