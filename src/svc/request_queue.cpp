#include "svc/request_queue.hpp"

namespace hetero::svc {

RequestQueue::RequestQueue(std::size_t depth)
    : depth_(depth == 0 ? 1 : depth) {}

bool RequestQueue::try_push(QueuedItem&& item) {
  {
    const support::MutexLock lock(mutex_);
    if (closed_ || items_.size() >= depth_) return false;
    item.sequence = next_sequence_++;
    items_.push_back(std::move(item));
  }
  cv_.notify_one();
  return true;
}

std::optional<QueuedItem> RequestQueue::pop() {
  support::MutexLock lock(mutex_);
  while (!closed_ && items_.empty()) cv_.wait(lock);
  if (items_.empty()) return std::nullopt;
  QueuedItem item = std::move(items_.front());
  items_.pop_front();
  return item;
}

std::optional<QueuedItem> RequestQueue::try_pop() {
  const support::MutexLock lock(mutex_);
  if (items_.empty()) return std::nullopt;
  QueuedItem item = std::move(items_.front());
  items_.pop_front();
  return item;
}

void RequestQueue::close() {
  {
    const support::MutexLock lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::size() const {
  const support::MutexLock lock(mutex_);
  return items_.size();
}

}  // namespace hetero::svc
