// Datacenter scenario description: the `machine class: { ... }` /
// `task class: { ... }` format used by the EEC simulator line (see
// SNIPPETS.md), parsed into typed machine/task classes that the
// discrete-event engine (sim/engine.hpp) instantiates.
//
// A machine class describes a fleet of identical hosts: core count,
// memory, the power ladder (S-states for whole-machine sleep depths,
// P-states for per-core active power, C-states for per-core idle power)
// and the per-P-state MIPS rating. A task class describes a seeded
// arrival stream of identical tasks: arrival window, mean inter-arrival
// gap, expected runtime on a 1000-MIPS reference core, memory footprint,
// and the SLA tier the completion deadline is scored against.
//
// The scenario also *implies* an ETC matrix — expected task-class work
// divided by machine-class top-speed MIPS, +infinity where a class
// cannot run (CPU type / GPU / memory mismatch) — which is what closes
// the loop with the paper: MPH/TDH/TMA of that matrix characterize the
// scenario's heterogeneity, and the simulator measures which scheduler
// actually wins under it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/error.hpp"
#include "core/etc_matrix.hpp"

namespace hetero::sim {

/// Expected runtimes are quoted on a reference core of this MIPS rating;
/// a machine at P-state p runs the class mips[p] / kReferenceMips times
/// faster than quoted.
inline constexpr double kReferenceMips = 1000.0;

/// A scenario file failed to parse or validate. The message is a single
/// line naming the offending block and key, e.g.
/// "scenario line 12: machine class #2: unknown key 'Memroy'".
class ScenarioError : public ValueError {
 public:
  using ValueError::ValueError;
};

/// One fleet of identical machines.
struct MachineClass {
  std::size_t count = 0;       // "Number of machines"
  std::string cpu_type;        // "CPU type" (X86, ARM, POWER, RISCV, ...)
  std::size_t cores = 0;       // "Number of cores"
  double memory_mb = 0.0;      // "Memory" (MB, shared by all cores)
  /// "S-States": whole-machine power (W) per sleep depth; index 0 is the
  /// awake baseline drawn whether or not any core works, deeper indices
  /// are progressively colder sleep states (the power-gating target is
  /// the deepest). Also drawn during sleep/wake transitions (index 0).
  std::vector<double> s_states;
  /// "P-States": per-core active power (W) at each performance state;
  /// same length as `mips` (index 0 = fastest).
  std::vector<double> p_states;
  /// "C-States": per-core idle power (W); an idle core of an awake
  /// machine rests at index 1 (clamped), index 0 being "core active".
  std::vector<double> c_states;
  /// "MIPS": per-core performance at each P-state; parallel to p_states.
  std::vector<double> mips;
  bool gpus = false;           // "GPUs": yes/no
};

/// SLA tiers: a task completing later than `sla_multiplier(tier)` times
/// its expected runtime after arrival violates its tier. SLA3 is best
/// effort and never violated.
enum class SlaTier : std::uint8_t { sla0 = 0, sla1 = 1, sla2 = 2, sla3 = 3 };

inline constexpr std::size_t kSlaTierCount = 4;

/// Completion-deadline multiplier on the expected runtime (1.2 / 1.5 /
/// 2.0 / +infinity for SLA0..SLA3).
double sla_multiplier(SlaTier tier);

const char* sla_name(SlaTier tier);  // "SLA0".."SLA3"

/// One seeded stream of identical tasks.
struct TaskClass {
  double start_time = 0.0;        // "Start time" (us)
  double end_time = 0.0;          // "End time" (us, exclusive)
  double inter_arrival = 0.0;     // "Inter arrival" (us, mean gap)
  double expected_runtime = 0.0;  // "Expected runtime" (us on the
                                  // kReferenceMips reference core)
  double memory_mb = 0.0;         // "Memory" (MB held while running)
  std::string vm_type = "LINUX";  // "VM type"
  bool gpu_enabled = false;       // "GPU enabled": yes/no
  SlaTier sla = SlaTier::sla3;    // "SLA type": SLA0..SLA3
  std::string cpu_type;           // "CPU type": must match the machine's
  std::string task_type = "WEB";  // "Task type" (label only)
  std::uint64_t seed = 0;         // "Seed": 0 = evenly spaced arrivals,
                                  // else exponential gaps (mean
                                  // inter_arrival) from this seed
};

struct Scenario {
  std::vector<MachineClass> machine_classes;
  std::vector<TaskClass> task_classes;

  /// Total machine instances across classes.
  std::size_t machine_count() const;
};

/// Parses and validates scenario text. Lines may end in CRLF; blank
/// lines and full-line comments (`#` or `//`) are skipped; keys tolerate
/// whitespace before the colon ("End time :"). Every failure throws
/// ScenarioError with one line naming the block and key at fault.
Scenario parse_scenario(std::string_view text);

/// Reads `path` and parses it; file errors also throw ScenarioError.
Scenario load_scenario(const std::string& path);

/// Can this task class run on this machine class? Requires matching CPU
/// type, a GPU when the task wants one, and a memory footprint within
/// the machine's total.
bool compatible(const TaskClass& task, const MachineClass& machine);

/// The scenario's implied ETC matrix over *classes*: entry (i, j) is
/// task class i's expected runtime on machine class j at its top
/// P-state — expected_runtime * kReferenceMips / mips[0] — and
/// +infinity where incompatible. This is the matrix whose MPH/TDH/TMA
/// characterize the scenario (row labels "task0".., column labels
/// "mc0"..).
core::EtcMatrix implied_etc(const Scenario& scenario);

/// The same runtimes expanded over machine *instances* (columns
/// "mc<class>.<index>"), which is what the online schedulers plan
/// against.
core::EtcMatrix instance_etc(const Scenario& scenario);

/// One task arrival: global arrival order is (time, class, sequence).
struct SimArrival {
  double time = 0.0;
  std::size_t task_class = 0;
};

/// Expands every task class into its arrival stream and merges them in
/// deterministic time order. A class with seed 0 fires exactly every
/// inter_arrival us from start_time; a nonzero seed draws exponential
/// gaps with mean inter_arrival from mt19937_64(seed), so streams are a
/// pure function of the scenario. Throws ScenarioError when the streams
/// would exceed `max_arrivals` tasks in total.
std::vector<SimArrival> generate_arrivals(const Scenario& scenario,
                                          std::size_t max_arrivals = 1u << 20);

}  // namespace hetero::sim
