#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "base/error.hpp"
#include "sim/scheduler.hpp"

namespace hetero::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kUsPerSecond = 1e6;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    h = (h ^ (value & 0xffu)) * kFnvPrime;
    value >>= 8;
  }
  return h;
}

}  // namespace

double SimReport::violation_rate(SlaTier tier) const {
  const auto t = static_cast<std::size_t>(tier);
  if (sla_completed[t] == 0) return 0.0;
  return static_cast<double>(sla_violated[t]) /
         static_cast<double>(sla_completed[t]);
}

double SimReport::overall_violation_rate() const {
  std::size_t done = 0, bad = 0;
  for (std::size_t t = 0; t < kSlaTierCount; ++t) {
    done += sla_completed[t];
    bad += sla_violated[t];
  }
  if (done == 0) return 0.0;
  return static_cast<double>(bad) / static_cast<double>(done);
}

Engine::Engine(const Scenario& scenario, SimOptions options)
    : scenario_(scenario),
      options_(options),
      etc_(instance_etc(scenario)),
      arrivals_(generate_arrivals(scenario, options.max_arrivals)) {
  detail::require_value(
      options_.tick_period >= 0.0 && std::isfinite(options_.tick_period),
      "Engine: tick_period must be finite and >= 0");
  detail::require_value(
      !(options_.power_gating || options_.dvfs || options_.migration) ||
          options_.tick_period > 0.0,
      "Engine: the power-gating/DVFS/migration controllers run at scheduler "
      "ticks; set tick_period > 0");
  if (options_.stall_after <= 0.0) {
    options_.stall_after = std::max(1e6, 20.0 * options_.tick_period);
  }

  machines_.reserve(scenario.machine_count());
  for (std::size_t c = 0; c < scenario.machine_classes.size(); ++c) {
    const MachineClass& spec = scenario.machine_classes[c];
    for (std::size_t k = 0; k < spec.count; ++k) {
      Machine m;
      m.cls = static_cast<std::uint32_t>(c);
      m.spec = &scenario_.machine_classes[c];
      m.mem_free = spec.memory_mb;
      machines_.push_back(std::move(m));
    }
  }
}

// ---------------------------------------------------------------------------
// Energy accounting.

double Engine::power_draw(const Machine& m) const {
  const MachineClass& spec = *m.spec;
  switch (m.power) {
    case PowerState::awake: {
      const std::size_t idle_c = std::min<std::size_t>(
          1, spec.c_states.size() - 1);
      const double busy = static_cast<double>(m.busy);
      const double idle = static_cast<double>(spec.cores - m.busy);
      return spec.s_states[0] + busy * spec.p_states[m.p] +
             idle * spec.c_states[idle_c];
    }
    case PowerState::to_sleep:
    case PowerState::to_wake:
      // Transitions draw the awake baseline with all cores quiesced.
      return spec.s_states[0];
    case PowerState::asleep:
      return spec.s_states[std::min(m.depth, spec.s_states.size() - 1)];
  }
  return 0.0;
}

void Engine::accrue(Machine& m) {
  const double dt = now_ - m.last_accrual;
  if (dt > 0.0) {
    m.energy_j += power_draw(m) * dt / kUsPerSecond;
    if (m.power == PowerState::asleep) m.asleep_s += dt / kUsPerSecond;
  }
  m.last_accrual = now_;
}

double Engine::rate_of(const Machine& m) const {
  return m.spec->mips[m.p];
}

// ---------------------------------------------------------------------------
// Trace + event plumbing.

void Engine::trace(TraceKind kind, std::uint32_t a, std::uint32_t b) {
  std::uint64_t h = report_.trace_hash;
  if (h == 0) h = kFnvOffset;
  h = fnv_mix(h, std::bit_cast<std::uint64_t>(now_));
  h = fnv_mix(h, static_cast<std::uint64_t>(kind));
  h = fnv_mix(h, (static_cast<std::uint64_t>(a) << 32) | b);
  report_.trace_hash = h;
  if (options_.record_trace) report_.trace.push_back({now_, kind, a, b});
}

void Engine::push_event(double time, EventKind kind, std::uint32_t id,
                        std::uint64_t gen) {
  events_.push(Event{time, next_seq_++, kind, id, gen});
}

// ---------------------------------------------------------------------------
// Power-state machinery.

void Engine::start_wake(Machine& m, std::uint32_t id) {
  switch (m.power) {
    case PowerState::asleep:
      accrue(m);
      m.power = PowerState::to_wake;
      m.depth = 0;
      m.wake_requested = false;
      ++m.gen;
      m.transition_done = now_ + options_.wake_latency;
      push_event(m.transition_done, EventKind::transition, id, m.gen);
      trace(TraceKind::wake_begin, id, 0);
      ++report_.sleep_transitions;
      break;
    case PowerState::to_sleep:
      m.wake_requested = true;  // wake as soon as the sleep settles
      break;
    case PowerState::awake:
    case PowerState::to_wake:
      break;
  }
}

void Engine::set_sleep(std::size_t machine, std::size_t depth) {
  detail::require_dims(machine < machines_.size(),
                       "set_sleep: machine index out of range");
  detail::require_value(depth >= 1, "set_sleep: depth must be >= 1 "
                                    "(use wake() to return to S0)");
  Machine& m = machines_[machine];
  if (m.spec->s_states.size() < 2) return;  // no sleep states defined
  if (m.power != PowerState::awake) return; // already sleeping or in motion
  detail::require_value(m.busy == 0 && m.queue.empty() && m.inbound == 0,
                        "set_sleep: machine has running or queued work");
  accrue(m);
  m.power = PowerState::to_sleep;
  m.sleep_target = std::min(depth, m.spec->s_states.size() - 1);
  ++m.gen;
  m.transition_done = now_ + options_.sleep_latency;
  push_event(m.transition_done, EventKind::transition,
             static_cast<std::uint32_t>(machine), m.gen);
  trace(TraceKind::sleep_begin, static_cast<std::uint32_t>(machine),
        static_cast<std::uint32_t>(m.sleep_target));
  ++report_.sleep_transitions;
}

void Engine::wake(std::size_t machine) {
  detail::require_dims(machine < machines_.size(),
                       "wake: machine index out of range");
  start_wake(machines_[machine], static_cast<std::uint32_t>(machine));
}

void Engine::set_p_state(std::size_t machine, std::size_t p) {
  detail::require_dims(machine < machines_.size(),
                       "set_p_state: machine index out of range");
  Machine& m = machines_[machine];
  detail::require_value(p < m.spec->mips.size(),
                        "set_p_state: no such P-state");
  detail::require_value(m.power == PowerState::awake,
                        "set_p_state: machine is not awake");
  if (p == m.p) return;
  accrue(m);
  const double old_rate = rate_of(m);
  m.p = p;
  // Accrue in-flight progress at the old rate, then reschedule each
  // running task's completion at the new one.
  for (const std::uint32_t tid : m.running) {
    Task& t = tasks_[tid];
    t.work_left =
        std::max(0.0, t.work_left - (now_ - t.progress_mark) * old_rate);
    schedule_completion(tid);
  }
  ++report_.p_state_changes;
  trace(TraceKind::p_state, static_cast<std::uint32_t>(machine),
        static_cast<std::uint32_t>(p));
}

// ---------------------------------------------------------------------------
// Task lifecycle.

void Engine::schedule_completion(std::uint32_t task_id) {
  Task& t = tasks_[task_id];
  const Machine& m = machines_[t.machine];
  t.progress_mark = now_;
  t.eta = now_ + t.work_left / rate_of(m);
  ++t.gen;
  push_event(t.eta, EventKind::completion, task_id, t.gen);
}

void Engine::dispatch_machine(std::uint32_t id) {
  Machine& m = machines_[id];
  if (m.power != PowerState::awake) {
    if (!m.queue.empty()) start_wake(m, id);
    return;
  }
  while (m.busy < m.spec->cores && !m.queue.empty()) {
    const std::uint32_t tid = m.queue.front();
    Task& t = tasks_[tid];
    const double mem = scenario_.task_classes[t.cls].memory_mb;
    if (mem > m.mem_free) break;  // FIFO head-of-line blocks on memory
    m.queue.pop_front();
    accrue(m);
    ++m.busy;
    m.mem_free -= mem;
    t.state = TaskState::running;
    t.machine = id;
    m.running.insert(std::lower_bound(m.running.begin(), m.running.end(), tid),
                     tid);
    schedule_completion(tid);
    m.last_activity = now_;
    last_progress_ = now_;
    trace(TraceKind::start, tid, id);
    scheduler_->on_start(*this, tid, id);
  }
}

void Engine::dispatch_all() {
  for (std::uint32_t j = 0; j < machines_.size(); ++j) dispatch_machine(j);
}

void Engine::finish_task(std::uint32_t task_id) {
  Task& t = tasks_[task_id];
  Machine& m = machines_[t.machine];
  accrue(m);
  --m.busy;
  m.mem_free += scenario_.task_classes[t.cls].memory_mb;
  m.running.erase(
      std::find(m.running.begin(), m.running.end(), task_id));
  m.last_activity = now_;
  t.state = TaskState::done;
  t.completion = now_;
  t.work_left = 0.0;
  ++completed_;
  last_progress_ = now_;

  const TaskClass& cls = scenario_.task_classes[t.cls];
  const auto tier = static_cast<std::size_t>(cls.sla);
  const double flow = now_ - t.arrival;
  ++report_.sla_completed[tier];
  if (flow > sla_multiplier(cls.sla) * cls.expected_runtime) {
    ++report_.sla_violated[tier];
  }
  report_.mean_flow_time += flow;  // running sum; divided in run()
  report_.max_flow_time = std::max(report_.max_flow_time, flow);
  trace(TraceKind::completion, task_id, t.machine);
}

// ---------------------------------------------------------------------------
// Event handlers.

void Engine::on_arrival_event(const Event& ev) {
  Task& t = tasks_[ev.id];
  t.cls = static_cast<std::uint32_t>(arrivals_[ev.id].task_class);
  t.arrival = now_;
  t.state = TaskState::pending;
  t.work_left =
      scenario_.task_classes[t.cls].expected_runtime * kReferenceMips;
  ++arrived_;
  last_progress_ = now_;
  trace(TraceKind::arrival, ev.id, 0);
  scheduler_->on_arrival(*this, ev.id);
  dispatch_all();
}

void Engine::on_completion_event(const Event& ev) {
  Task& t = tasks_[ev.id];
  if (ev.gen != t.gen || t.state != TaskState::running) return;  // stale
  const std::uint32_t machine = t.machine;
  finish_task(ev.id);
  scheduler_->on_completion(*this, ev.id, machine);
  if (completed_ < tasks_.size()) dispatch_all();
}

void Engine::on_transition_event(const Event& ev) {
  Machine& m = machines_[ev.id];
  if (ev.gen != m.gen) return;  // superseded transition
  accrue(m);
  last_progress_ = now_;
  switch (m.power) {
    case PowerState::to_sleep:
      m.power = PowerState::asleep;
      m.depth = std::min(m.sleep_target, m.spec->s_states.size() - 1);
      trace(TraceKind::state_settled, ev.id,
            static_cast<std::uint32_t>(m.depth));
      if (m.wake_requested || !m.queue.empty()) start_wake(m, ev.id);
      break;
    case PowerState::to_wake:
      m.power = PowerState::awake;
      m.depth = 0;
      trace(TraceKind::state_settled, ev.id, 0);
      dispatch_machine(ev.id);
      break;
    case PowerState::awake:
    case PowerState::asleep:
      break;  // unreachable under the generation guard
  }
}

void Engine::on_migration_event(const Event& ev) {
  Task& t = tasks_[ev.id];
  if (ev.gen != t.gen || t.state != TaskState::migrating) return;
  Machine& m = machines_[t.machine];
  --m.inbound;
  t.state = TaskState::queued;
  m.queue.push_back(ev.id);
  last_progress_ = now_;
  trace(TraceKind::migrate_land, ev.id, t.machine);
  dispatch_machine(t.machine);
}

void Engine::on_tick_event() {
  scheduler_->on_tick(*this);
  if (options_.dvfs) controller_dvfs();
  if (options_.migration) controller_migrate();
  if (options_.power_gating) controller_power_gate();
  dispatch_all();

  // Stall detection: every arrival is in, nothing runs, nothing is in
  // flight, and no progress has been made for stall_after — the
  // scheduler has abandoned work (or a bug deadlocked dispatch).
  if (completed_ < tasks_.size() && arrived_ == tasks_.size() &&
      now_ - last_progress_ > options_.stall_after) {
    bool in_flight = false;
    for (const Machine& m : machines_) {
      if (m.busy > 0 || m.inbound > 0 || m.power == PowerState::to_sleep ||
          m.power == PowerState::to_wake) {
        in_flight = true;
        break;
      }
    }
    if (!in_flight) {
      throw ValueError(
          "simulation stalled: " +
          std::to_string(tasks_.size() - completed_) +
          " tasks neither running nor making progress (scheduler left "
          "work unassigned)");
    }
  }
  if (completed_ < tasks_.size()) {
    push_event(now_ + options_.tick_period, EventKind::tick, 0, 0);
  }
}

// ---------------------------------------------------------------------------
// Engine-level controllers.

void Engine::controller_power_gate() {
  for (std::uint32_t j = 0; j < machines_.size(); ++j) {
    Machine& m = machines_[j];
    if (m.power != PowerState::awake || m.busy > 0 || !m.queue.empty() ||
        m.inbound > 0) {
      continue;
    }
    if (m.spec->s_states.size() < 2) continue;
    if (now_ - m.last_activity < options_.idle_sleep_after) continue;
    set_sleep(j, m.spec->s_states.size() - 1);
  }
}

void Engine::controller_dvfs() {
  for (std::uint32_t j = 0; j < machines_.size(); ++j) {
    Machine& m = machines_[j];
    if (m.power != PowerState::awake || m.busy == 0) continue;
    const std::size_t deepest = m.spec->mips.size() - 1;
    const bool underloaded = m.queue.empty() && 2 * m.busy <= m.spec->cores;
    const std::size_t target =
        underloaded ? std::min(m.p + 1, deepest) : std::size_t{0};
    if (target != m.p) set_p_state(j, target);
  }
}

void Engine::controller_migrate() {
  // One migration per tick: from the most-loaded machine (first maximum)
  // to the least-loaded awake machine (first minimum), when the gap
  // crosses the threshold and a compatible running task exists.
  std::size_t hi = 0, hi_load = 0;
  bool have_lo = false;
  std::size_t lo = 0, lo_load = 0;
  for (std::size_t j = 0; j < machines_.size(); ++j) {
    const std::size_t load = load_of(j);
    if (load > hi_load) {
      hi = j;
      hi_load = load;
    }
    if (machines_[j].power == PowerState::awake &&
        (!have_lo || load < lo_load)) {
      have_lo = true;
      lo = j;
      lo_load = load;
    }
  }
  if (!have_lo || hi == lo) return;
  if (hi_load < lo_load + options_.migration_gap) return;
  for (const std::uint32_t tid : machines_[hi].running) {
    if (!can_run(tid, lo)) continue;
    migrate(tid, lo);
    return;
  }
}

// ---------------------------------------------------------------------------
// Scheduler-facing control surface.

std::size_t Engine::task_class_of(std::size_t task) const {
  detail::require_dims(task < tasks_.size(), "task index out of range");
  return arrivals_[task].task_class;
}

double Engine::arrival_time_of(std::size_t task) const {
  detail::require_dims(task < arrived_, "task has not arrived");
  return tasks_[task].arrival;
}

bool Engine::task_done(std::size_t task) const {
  detail::require_dims(task < tasks_.size(), "task index out of range");
  return tasks_[task].state == TaskState::done;
}

bool Engine::can_run(std::size_t task, std::size_t machine) const {
  detail::require_dims(task < tasks_.size() && machine < machines_.size(),
                       "can_run: index out of range");
  return std::isfinite(etc_(arrivals_[task].task_class, machine));
}

std::vector<std::size_t> Engine::unstarted() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < arrived_; ++i) {
    if (tasks_[i].state == TaskState::pending ||
        tasks_[i].state == TaskState::queued) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<double> Engine::base_ready_times() const {
  std::vector<double> base(machines_.size(), now_);
  for (std::size_t j = 0; j < machines_.size(); ++j) {
    const Machine& m = machines_[j];
    double avail = now_;
    switch (m.power) {
      case PowerState::awake:
        break;
      case PowerState::to_wake:
        avail = m.transition_done;
        break;
      case PowerState::asleep:
        avail = now_ + options_.wake_latency;
        break;
      case PowerState::to_sleep:
        avail = m.transition_done + options_.wake_latency;
        break;
    }
    if (m.busy >= m.spec->cores && !m.running.empty()) {
      double earliest = kInf;
      for (const std::uint32_t tid : m.running) {
        earliest = std::min(earliest, tasks_[tid].eta);
      }
      avail = std::max(avail, earliest);
    }
    base[j] = avail;
  }
  return base;
}

std::vector<double> Engine::ready_times() const {
  std::vector<double> ready = base_ready_times();
  for (std::size_t j = 0; j < machines_.size(); ++j) {
    const Machine& m = machines_[j];
    double queued_work = 0.0;
    for (const std::uint32_t tid : m.queue) {
      queued_work += etc_(tasks_[tid].cls, j);
    }
    ready[j] += queued_work / static_cast<double>(m.spec->cores);
  }
  return ready;
}

void Engine::recall_queued() {
  for (Machine& m : machines_) {
    for (const std::uint32_t tid : m.queue) {
      tasks_[tid].state = TaskState::pending;
    }
    m.queue.clear();
  }
}

void Engine::assign(std::size_t task, std::size_t machine) {
  detail::require_dims(task < arrived_ && machine < machines_.size(),
                       "assign: index out of range");
  Task& t = tasks_[task];
  detail::require_value(t.state == TaskState::pending ||
                            t.state == TaskState::queued,
                        "assign: task is not assignable (running or done)");
  detail::require_value(can_run(task, machine),
                        "assign: machine cannot run this task");
  if (t.state == TaskState::queued) {
    Machine& old = machines_[t.machine];
    const auto it = std::find(old.queue.begin(), old.queue.end(),
                              static_cast<std::uint32_t>(task));
    if (it != old.queue.end()) old.queue.erase(it);
  }
  t.state = TaskState::queued;
  t.machine = static_cast<std::uint32_t>(machine);
  machines_[machine].queue.push_back(static_cast<std::uint32_t>(task));
}

bool Engine::migrate(std::size_t task, std::size_t machine) {
  detail::require_dims(task < tasks_.size() && machine < machines_.size(),
                       "migrate: index out of range");
  Task& t = tasks_[task];
  if (t.state != TaskState::running) return false;
  if (t.machine == machine) return false;
  detail::require_value(can_run(task, machine),
                        "migrate: target cannot run this task");
  Machine& src = machines_[t.machine];
  accrue(src);
  t.work_left =
      std::max(0.0, t.work_left - (now_ - t.progress_mark) * rate_of(src));
  --src.busy;
  src.mem_free += scenario_.task_classes[t.cls].memory_mb;
  src.running.erase(std::find(src.running.begin(), src.running.end(),
                              static_cast<std::uint32_t>(task)));
  src.last_activity = now_;
  t.state = TaskState::migrating;
  t.machine = static_cast<std::uint32_t>(machine);
  ++t.gen;
  ++machines_[machine].inbound;
  push_event(now_ + options_.migration_latency, EventKind::migration,
             static_cast<std::uint32_t>(task), t.gen);
  ++report_.migrations;
  trace(TraceKind::migrate_begin, static_cast<std::uint32_t>(task),
        static_cast<std::uint32_t>(machine));
  return true;
}

std::size_t Engine::machine_class_of(std::size_t machine) const {
  detail::require_dims(machine < machines_.size(),
                       "machine index out of range");
  return machines_[machine].cls;
}

bool Engine::awake(std::size_t machine) const {
  detail::require_dims(machine < machines_.size(),
                       "machine index out of range");
  return machines_[machine].power == PowerState::awake;
}

std::size_t Engine::sleep_depth(std::size_t machine) const {
  detail::require_dims(machine < machines_.size(),
                       "machine index out of range");
  const Machine& m = machines_[machine];
  return m.power == PowerState::asleep ? m.depth : 0;
}

std::size_t Engine::busy_cores(std::size_t machine) const {
  detail::require_dims(machine < machines_.size(),
                       "machine index out of range");
  return machines_[machine].busy;
}

std::size_t Engine::queue_length(std::size_t machine) const {
  detail::require_dims(machine < machines_.size(),
                       "machine index out of range");
  return machines_[machine].queue.size();
}

std::size_t Engine::load_of(std::size_t machine) const {
  detail::require_dims(machine < machines_.size(),
                       "machine index out of range");
  const Machine& m = machines_[machine];
  return m.busy + m.queue.size() + m.inbound;
}

double Engine::free_memory(std::size_t machine) const {
  detail::require_dims(machine < machines_.size(),
                       "machine index out of range");
  return machines_[machine].mem_free;
}

std::size_t Engine::p_state(std::size_t machine) const {
  detail::require_dims(machine < machines_.size(),
                       "machine index out of range");
  return machines_[machine].p;
}

// ---------------------------------------------------------------------------
// The main loop.

SimReport Engine::run(OnlineScheduler& scheduler) {
  detail::require_value(!ran_, "Engine::run: engines are one-shot; "
                               "construct a fresh Engine per run");
  ran_ = true;
  scheduler_ = &scheduler;
  report_ = SimReport{};
  report_.scheduler = std::string(scheduler.name());
  report_.tasks = arrivals_.size();
  tasks_.assign(arrivals_.size(), Task{});

  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    push_event(arrivals_[i].time, EventKind::arrival,
               static_cast<std::uint32_t>(i), 0);
  }
  if (options_.tick_period > 0.0 && !arrivals_.empty()) {
    push_event(options_.tick_period, EventKind::tick, 0, 0);
  }

  while (!events_.empty()) {
    const Event ev = events_.top();
    events_.pop();
    now_ = ev.time;
    ++report_.events;
    switch (ev.kind) {
      case EventKind::arrival: on_arrival_event(ev); break;
      case EventKind::completion: on_completion_event(ev); break;
      case EventKind::transition: on_transition_event(ev); break;
      case EventKind::migration: on_migration_event(ev); break;
      case EventKind::tick: on_tick_event(); break;
    }
    if (completed_ == tasks_.size()) break;
  }
  if (completed_ < tasks_.size()) {
    throw ValueError("simulation stalled: event queue drained with " +
                     std::to_string(tasks_.size() - completed_) +
                     " unfinished tasks");
  }

  report_.end_time = now_;
  report_.completed = completed_;
  report_.machine_energy_j.resize(machines_.size());
  for (std::size_t j = 0; j < machines_.size(); ++j) {
    accrue(machines_[j]);
    report_.machine_energy_j[j] = machines_[j].energy_j;
    report_.total_energy_j += machines_[j].energy_j;
    report_.asleep_machine_seconds += machines_[j].asleep_s;
  }
  if (completed_ > 0) {
    report_.mean_flow_time /= static_cast<double>(completed_);
  }
  scheduler_ = nullptr;
  return std::move(report_);
}

}  // namespace hetero::sim
