#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>

namespace hetero::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Lexical helpers. The format is line-oriented: block headers, braces, and
// `Key: value` lines, with CRLF endings and `#` / `//` comment lines
// tolerated everywhere.

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool is_comment(std::string_view line) {
  return line.starts_with("#") || line.starts_with("//");
}

/// Collapses internal whitespace runs to single spaces, so block headers
/// like "machine   class :" still match.
std::string collapse_spaces(std::string_view s) {
  std::string out;
  bool in_space = false;
  for (char c : s) {
    if (c == ' ' || c == '\t') {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty()) out.push_back(' ');
    in_space = false;
    out.push_back(c);
  }
  return out;
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ScenarioError("scenario line " + std::to_string(line) + ": " + what);
}

[[noreturn]] void fail_block(std::size_t line, const std::string& block,
                             const std::string& what) {
  fail(line, block + ": " + what);
}

// ---------------------------------------------------------------------------
// Value parsers. Every conversion consumes the whole value string, so
// "12x3" or "3000," fail instead of silently truncating.

double parse_number(std::size_t line, const std::string& block,
                    const std::string& key, std::string_view value) {
  const std::string text(value);
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() ||
      !std::isfinite(parsed)) {
    fail_block(line, block,
               "invalid value for '" + key + "': '" + text + "'");
  }
  return parsed;
}

double parse_positive(std::size_t line, const std::string& block,
                      const std::string& key, std::string_view value) {
  const double parsed = parse_number(line, block, key, value);
  if (parsed <= 0.0) {
    fail_block(line, block, "'" + key + "' must be positive, got '" +
                                std::string(value) + "'");
  }
  return parsed;
}

std::size_t parse_count(std::size_t line, const std::string& block,
                        const std::string& key, std::string_view value) {
  const double parsed = parse_number(line, block, key, value);
  if (parsed < 1.0 || parsed != std::floor(parsed) || parsed > 1e9) {
    fail_block(line, block, "'" + key + "' must be a positive integer, got '" +
                                std::string(value) + "'");
  }
  return static_cast<std::size_t>(parsed);
}

std::uint64_t parse_seed(std::size_t line, const std::string& block,
                         const std::string& key, std::string_view value) {
  const double parsed = parse_number(line, block, key, value);
  if (parsed < 0.0 || parsed != std::floor(parsed) || parsed > 1.8e19) {
    fail_block(line, block,
               "'" + key + "' must be a non-negative integer, got '" +
                   std::string(value) + "'");
  }
  return static_cast<std::uint64_t>(parsed);
}

bool parse_yes_no(std::size_t line, const std::string& block,
                  const std::string& key, std::string_view value) {
  if (value == "yes") return true;
  if (value == "no") return false;
  fail_block(line, block, "'" + key + "' must be 'yes' or 'no', got '" +
                              std::string(value) + "'");
}

/// "[a, b, c]" -> numbers. Empty lists are rejected.
std::vector<double> parse_list(std::size_t line, const std::string& block,
                               const std::string& key,
                               std::string_view value) {
  if (!value.starts_with('[') || !value.ends_with(']')) {
    fail_block(line, block, "'" + key + "' must be a [a, b, ...] list, got '" +
                                std::string(value) + "'");
  }
  value.remove_prefix(1);
  value.remove_suffix(1);
  std::vector<double> out;
  std::size_t start = 0;
  const std::string inner(value);
  while (start <= inner.size()) {
    std::size_t comma = inner.find(',', start);
    if (comma == std::string::npos) comma = inner.size();
    const std::string_view item = trim(
        std::string_view(inner).substr(start, comma - start));
    if (item.empty()) {
      fail_block(line, block, "'" + key + "' has an empty list element");
    }
    out.push_back(parse_number(line, block, key, item));
    if (comma == inner.size()) break;
    start = comma + 1;
  }
  if (out.empty()) {
    fail_block(line, block, "'" + key + "' must not be an empty list");
  }
  return out;
}

SlaTier parse_sla(std::size_t line, const std::string& block,
                  const std::string& key, std::string_view value) {
  for (std::size_t t = 0; t < kSlaTierCount; ++t) {
    if (value == sla_name(static_cast<SlaTier>(t))) {
      return static_cast<SlaTier>(t);
    }
  }
  fail_block(line, block, "'" + key + "' must be SLA0..SLA3, got '" +
                              std::string(value) + "'");
}

// ---------------------------------------------------------------------------
// Block assembly: one `Key: value` dispatcher per block kind, plus the
// required-key audit run when the block closes.

struct BlockCursor {
  std::string label;          // "machine class #2"
  std::size_t header_line = 0;
  std::vector<std::string> seen;

  bool saw(const std::string& key) const {
    return std::find(seen.begin(), seen.end(), key) != seen.end();
  }
  void mark(std::size_t line, const std::string& key) {
    if (saw(key)) fail_block(line, label, "duplicate key '" + key + "'");
    seen.push_back(key);
  }
  void require(const char* key) const {
    if (!saw(key)) {
      fail_block(header_line, label,
                 "missing required key '" + std::string(key) + "'");
    }
  }
};

void apply_machine_key(BlockCursor& cur, std::size_t line,
                       const std::string& key, std::string_view value,
                       MachineClass& mc) {
  cur.mark(line, key);
  if (key == "Number of machines") {
    mc.count = parse_count(line, cur.label, key, value);
  } else if (key == "CPU type") {
    mc.cpu_type = std::string(value);
  } else if (key == "Number of cores") {
    mc.cores = parse_count(line, cur.label, key, value);
  } else if (key == "Memory") {
    mc.memory_mb = parse_positive(line, cur.label, key, value);
  } else if (key == "S-States") {
    mc.s_states = parse_list(line, cur.label, key, value);
  } else if (key == "P-States") {
    mc.p_states = parse_list(line, cur.label, key, value);
  } else if (key == "C-States") {
    mc.c_states = parse_list(line, cur.label, key, value);
  } else if (key == "MIPS") {
    mc.mips = parse_list(line, cur.label, key, value);
  } else if (key == "GPUs") {
    mc.gpus = parse_yes_no(line, cur.label, key, value);
  } else {
    fail_block(line, cur.label, "unknown key '" + key + "'");
  }
}

void finish_machine(const BlockCursor& cur, MachineClass& mc) {
  for (const char* key : {"Number of machines", "CPU type", "Number of cores",
                          "Memory", "S-States", "P-States", "C-States",
                          "MIPS"}) {
    cur.require(key);
  }
  const std::size_t line = cur.header_line;
  if (mc.p_states.size() != mc.mips.size()) {
    fail_block(line, cur.label,
               "P-States and MIPS must have the same length (" +
                   std::to_string(mc.p_states.size()) + " vs " +
                   std::to_string(mc.mips.size()) + ")");
  }
  const std::pair<const std::vector<double>*, const char*> power_lists[] = {
      {&mc.s_states, "S-States"},
      {&mc.p_states, "P-States"},
      {&mc.c_states, "C-States"}};
  for (const auto& [states, key] : power_lists) {
    for (double w : *states) {
      if (w < 0.0) {
        std::string msg = "'";
        msg += key;
        msg += "' entries must be >= 0";
        fail_block(line, cur.label, msg);
      }
    }
  }
  for (double m : mc.mips) {
    if (m <= 0.0) {
      fail_block(line, cur.label, "'MIPS' entries must be positive");
    }
  }
}

void apply_task_key(BlockCursor& cur, std::size_t line, const std::string& key,
                    std::string_view value, TaskClass& tc) {
  cur.mark(line, key);
  if (key == "Start time") {
    tc.start_time = parse_number(line, cur.label, key, value);
  } else if (key == "End time") {
    tc.end_time = parse_number(line, cur.label, key, value);
  } else if (key == "Inter arrival") {
    tc.inter_arrival = parse_positive(line, cur.label, key, value);
  } else if (key == "Expected runtime") {
    tc.expected_runtime = parse_positive(line, cur.label, key, value);
  } else if (key == "Memory") {
    tc.memory_mb = parse_positive(line, cur.label, key, value);
  } else if (key == "VM type") {
    tc.vm_type = std::string(value);
  } else if (key == "GPU enabled") {
    tc.gpu_enabled = parse_yes_no(line, cur.label, key, value);
  } else if (key == "SLA type") {
    tc.sla = parse_sla(line, cur.label, key, value);
  } else if (key == "CPU type") {
    tc.cpu_type = std::string(value);
  } else if (key == "Task type") {
    tc.task_type = std::string(value);
  } else if (key == "Seed") {
    tc.seed = parse_seed(line, cur.label, key, value);
  } else {
    fail_block(line, cur.label, "unknown key '" + key + "'");
  }
}

void finish_task(const BlockCursor& cur, TaskClass& tc) {
  for (const char* key : {"Start time", "End time", "Inter arrival",
                          "Expected runtime", "Memory", "SLA type",
                          "CPU type"}) {
    cur.require(key);
  }
  const std::size_t line = cur.header_line;
  if (tc.start_time < 0.0) {
    fail_block(line, cur.label, "'Start time' must be >= 0");
  }
  if (tc.end_time <= tc.start_time) {
    fail_block(line, cur.label, "'End time' must be after 'Start time'");
  }
}

void validate_scenario(const Scenario& scenario) {
  if (scenario.machine_classes.empty()) {
    throw ScenarioError("scenario: no machine class blocks");
  }
  if (scenario.task_classes.empty()) {
    throw ScenarioError("scenario: no task class blocks");
  }
  // Every task class must run somewhere and every machine class must run
  // something, or the implied ETC matrix would have an all-infinite row or
  // column (the EtcMatrix invariant).
  for (std::size_t i = 0; i < scenario.task_classes.size(); ++i) {
    const auto& tc = scenario.task_classes[i];
    const bool runs_somewhere =
        std::any_of(scenario.machine_classes.begin(),
                    scenario.machine_classes.end(),
                    [&](const MachineClass& mc) { return compatible(tc, mc); });
    if (!runs_somewhere) {
      throw ScenarioError(
          "scenario: task class #" + std::to_string(i + 1) +
          " is compatible with no machine class (CPU type/GPU/memory)");
    }
  }
  for (std::size_t j = 0; j < scenario.machine_classes.size(); ++j) {
    const auto& mc = scenario.machine_classes[j];
    const bool runs_something =
        std::any_of(scenario.task_classes.begin(), scenario.task_classes.end(),
                    [&](const TaskClass& tc) { return compatible(tc, mc); });
    if (!runs_something) {
      throw ScenarioError("scenario: machine class #" + std::to_string(j + 1) +
                          " can run no task class");
    }
  }
}

}  // namespace

double sla_multiplier(SlaTier tier) {
  switch (tier) {
    case SlaTier::sla0: return 1.2;
    case SlaTier::sla1: return 1.5;
    case SlaTier::sla2: return 2.0;
    case SlaTier::sla3: return kInf;
  }
  return kInf;
}

const char* sla_name(SlaTier tier) {
  switch (tier) {
    case SlaTier::sla0: return "SLA0";
    case SlaTier::sla1: return "SLA1";
    case SlaTier::sla2: return "SLA2";
    case SlaTier::sla3: return "SLA3";
  }
  return "SLA?";
}

std::size_t Scenario::machine_count() const {
  std::size_t total = 0;
  for (const auto& mc : machine_classes) total += mc.count;
  return total;
}

Scenario parse_scenario(std::string_view text) {
  Scenario scenario;
  enum class State { top, want_brace, in_machine, in_task };
  State state = State::top;
  BlockCursor cur;
  MachineClass mc;
  TaskClass tc;
  bool machine_block = false;

  std::size_t lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view raw = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;
    const std::string_view line = trim(raw);
    if (line.empty() || is_comment(line)) {
      if (pos > text.size()) break;
      continue;
    }

    switch (state) {
      case State::top: {
        const std::string header = collapse_spaces(line);
        if (header == "machine class:" || header == "machine class :") {
          machine_block = true;
          mc = MachineClass{};
          cur = BlockCursor{};
          cur.header_line = lineno;
          cur.label = "machine class #" +
                      std::to_string(scenario.machine_classes.size() + 1);
          state = State::want_brace;
        } else if (header == "task class:" || header == "task class :") {
          machine_block = false;
          tc = TaskClass{};
          cur = BlockCursor{};
          cur.header_line = lineno;
          cur.label =
              "task class #" + std::to_string(scenario.task_classes.size() + 1);
          state = State::want_brace;
        } else {
          fail(lineno, "expected 'machine class:' or 'task class:', got '" +
                           std::string(line) + "'");
        }
        break;
      }
      case State::want_brace: {
        if (line != "{") {
          fail_block(lineno, cur.label, "expected '{' after block header");
        }
        state = machine_block ? State::in_machine : State::in_task;
        break;
      }
      case State::in_machine:
      case State::in_task: {
        if (line == "}") {
          if (machine_block) {
            finish_machine(cur, mc);
            scenario.machine_classes.push_back(std::move(mc));
          } else {
            finish_task(cur, tc);
            scenario.task_classes.push_back(tc);
          }
          state = State::top;
          break;
        }
        if (line == "{" || collapse_spaces(line).ends_with("class:")) {
          fail_block(lineno, cur.label,
                     "unterminated block (missing '}' before '" +
                         std::string(line) + "')");
        }
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos) {
          fail_block(lineno, cur.label,
                     "expected 'Key: value', got '" + std::string(line) + "'");
        }
        const std::string key(trim(line.substr(0, colon)));
        const std::string_view value = trim(line.substr(colon + 1));
        if (key.empty()) {
          fail_block(lineno, cur.label, "empty key before ':'");
        }
        if (value.empty()) {
          fail_block(lineno, cur.label, "missing value for '" + key + "'");
        }
        if (machine_block) {
          apply_machine_key(cur, lineno, key, value, mc);
        } else {
          apply_task_key(cur, lineno, key, value, tc);
        }
        break;
      }
    }
    if (pos > text.size()) break;
  }

  if (state != State::top) {
    fail_block(lineno, cur.label, "unterminated block (missing '}')");
  }
  validate_scenario(scenario);
  return scenario;
}

Scenario load_scenario(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ScenarioError("scenario: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario(std::move(buffer).str());
}

bool compatible(const TaskClass& task, const MachineClass& machine) {
  if (task.cpu_type != machine.cpu_type) return false;
  if (task.gpu_enabled && !machine.gpus) return false;
  if (task.memory_mb > machine.memory_mb) return false;
  return true;
}

core::EtcMatrix implied_etc(const Scenario& scenario) {
  const std::size_t t = scenario.task_classes.size();
  const std::size_t m = scenario.machine_classes.size();
  linalg::Matrix values(t, m, kInf);
  std::vector<std::string> task_names(t), machine_names(m);
  for (std::size_t i = 0; i < t; ++i) {
    task_names[i] = "task" + std::to_string(i);
  }
  for (std::size_t j = 0; j < m; ++j) {
    machine_names[j] = "mc" + std::to_string(j);
  }
  for (std::size_t i = 0; i < t; ++i) {
    const auto& tc = scenario.task_classes[i];
    for (std::size_t j = 0; j < m; ++j) {
      const auto& mc = scenario.machine_classes[j];
      if (!compatible(tc, mc)) continue;
      values(i, j) = tc.expected_runtime * kReferenceMips / mc.mips[0];
    }
  }
  return core::EtcMatrix(std::move(values), std::move(task_names),
                         std::move(machine_names));
}

core::EtcMatrix instance_etc(const Scenario& scenario) {
  const std::size_t t = scenario.task_classes.size();
  const std::size_t m = scenario.machine_count();
  linalg::Matrix values(t, m, kInf);
  std::vector<std::string> task_names(t), machine_names(m);
  for (std::size_t i = 0; i < t; ++i) {
    task_names[i] = "task" + std::to_string(i);
  }
  std::size_t col = 0;
  for (std::size_t j = 0; j < scenario.machine_classes.size(); ++j) {
    const auto& mc = scenario.machine_classes[j];
    for (std::size_t k = 0; k < mc.count; ++k, ++col) {
      machine_names[col] =
          "mc" + std::to_string(j) + "." + std::to_string(k);
      for (std::size_t i = 0; i < t; ++i) {
        if (!compatible(scenario.task_classes[i], mc)) continue;
        values(i, col) = scenario.task_classes[i].expected_runtime *
                         kReferenceMips / mc.mips[0];
      }
    }
  }
  return core::EtcMatrix(std::move(values), std::move(task_names),
                         std::move(machine_names));
}

std::vector<SimArrival> generate_arrivals(const Scenario& scenario,
                                          std::size_t max_arrivals) {
  std::vector<SimArrival> arrivals;
  for (std::size_t k = 0; k < scenario.task_classes.size(); ++k) {
    const auto& tc = scenario.task_classes[k];
    std::mt19937_64 rng(tc.seed);
    std::exponential_distribution<double> gap(1.0 / tc.inter_arrival);
    double t = tc.start_time;
    while (t < tc.end_time) {
      if (arrivals.size() >= max_arrivals) {
        throw ScenarioError(
            "scenario: task class #" + std::to_string(k + 1) +
            " overflows the arrival budget (" + std::to_string(max_arrivals) +
            " tasks); widen 'Inter arrival' or narrow the window");
      }
      arrivals.push_back({t, k});
      t += tc.seed == 0 ? tc.inter_arrival : gap(rng);
    }
  }
  // Merge streams deterministically: per-class times are non-decreasing, so
  // (time, class) is a total order up to exact in-class ties, which
  // stable_sort preserves in emission order.
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const SimArrival& a, const SimArrival& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.task_class < b.task_class;
                   });
  return arrivals;
}

}  // namespace hetero::sim
