// Pluggable online scheduling for the discrete-event engine.
//
// The engine drives a scheduler through four callbacks; the scheduler
// steers through the Engine control surface (assign / migrate /
// set_sleep / set_p_state). Callbacks run synchronously inside event
// handling, so anything the scheduler does is part of the deterministic
// event order.
//
// Shipped schedulers, by token:
//
//   greedy_mct     immediate mode: each arrival goes straight to the
//                  machine with the earliest estimated completion
//                  (ready_times() + ETC, first strict minimum).
//   min_min        batch mode, cold reference: on every arrival and
//                  completion, recall all queued work and re-run the
//                  O(U^2 M) batch-mode greedy (smallest best completion
//                  time first) against base_ready_times().
//   max_min        as min_min with largest best completion time first.
//   batch_min_min  the same policies planned through the incremental
//   batch_max_min  sched::BatchEngine epoch interface. Bit-identical
//                  traces to their cold twins (the `sim_equiv` label
//                  asserts it), extending the sched_equiv discipline
//                  into the simulator.
//
// Scheduler instances are one-shot and engine-bound, like Engine itself:
// make a fresh one per run.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"

namespace hetero::sim {

class OnlineScheduler {
 public:
  virtual ~OnlineScheduler() = default;

  /// Stable token naming the policy (appears in SimReport::scheduler).
  virtual std::string_view name() const = 0;

  /// A task arrived (id = arrival order) and is pending.
  virtual void on_arrival(Engine& engine, std::size_t task) = 0;
  /// A queued task began executing on `machine`.
  virtual void on_start(Engine& engine, std::size_t task,
                        std::size_t machine);
  /// A task finished on `machine` (core and memory already released).
  virtual void on_completion(Engine& engine, std::size_t task,
                             std::size_t machine);
  /// Periodic tick (SimOptions::tick_period), before the engine-level
  /// controllers run.
  virtual void on_tick(Engine& engine);
};

/// Builds the scheduler named by `token`; throws ValueError on an
/// unknown token (the message lists the valid ones).
std::unique_ptr<OnlineScheduler> make_scheduler(std::string_view token);

/// Every token make_scheduler() accepts, in registry order.
std::vector<std::string_view> scheduler_tokens();

}  // namespace hetero::sim
