// Deterministic discrete-event datacenter simulator.
//
// The engine instantiates a Scenario (sim/scenario.hpp) into machine
// instances and a merged arrival stream, then processes a typed event
// queue — task arrival, task completion, power-state transition
// complete, migration landing, periodic scheduler tick — in strict
// (time, insertion-sequence) order, so a run is a pure function of
// (scenario, options, scheduler): repeated runs replay bit-identically,
// which the `sim_equiv` test label asserts via the report's trace hash.
//
// Machine model. Each instance carries a whole-machine power state
// (awake, transitioning, or asleep at an S-state depth), a machine-wide
// P-state, a core pool, and a memory pool. Tasks occupy one core and
// their memory footprint while running and progress at the machine's
// current per-P-state MIPS; changing the P-state (or migrating) accrues
// the progress made so far and reschedules the completion event at the
// new rate. Energy integrates electrical power over state residency:
//
//   awake:        P = S[0] + busy * Pstate[p] + (cores - busy) * C[idle]
//   transitioning:P = S[0]               (sleep<->wake, cores quiesced)
//   asleep at d:  P = S[d]
//
// with C[idle] the first sub-active C-state (index 1, clamped). Energy
// in joules = sum of P (watts) x residency (seconds; sim time is in
// microseconds).
//
// SLA accounting. A task that completes later than
// sla_multiplier(tier) x expected_runtime after its arrival violates
// its tier; the report carries per-tier completion and violation
// counts. SLA3 is best effort and never violates.
//
// Scheduling is pluggable through OnlineScheduler (sim/scheduler.hpp):
// the engine calls back on arrival / start / completion / tick, and the
// scheduler steers through the assign / migrate / set_sleep /
// set_p_state control surface. Engine-level controllers (enabled per
// SimOptions) add the simulator-native behaviors on top of any
// scheduler: idle machines power-gate to the deepest S-state and wake
// on demand, underloaded machines step their P-state down (DVFS), and
// load imbalance beyond a threshold migrates a running task.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <queue>
#include <string>
#include <vector>

#include "core/etc_matrix.hpp"
#include "sim/scenario.hpp"

namespace hetero::sim {

class OnlineScheduler;

/// Engine knobs. The defaults simulate plain always-on machines; the
/// power/migration controllers are opt-in and require a positive tick
/// period (they run at scheduler ticks).
struct SimOptions {
  /// Gap between periodic scheduler ticks (us); 0 disables ticks (and
  /// the controllers below must then stay disabled).
  double tick_period = 50'000.0;

  /// Power-gate: sleep a machine that has been idle for
  /// `idle_sleep_after` us to its deepest S-state; wake it when work is
  /// assigned (paying `wake_latency`).
  bool power_gating = false;
  double idle_sleep_after = 200'000.0;
  double sleep_latency = 50'000.0;
  double wake_latency = 100'000.0;

  /// DVFS: a busy machine with an empty queue and at most half its
  /// cores occupied steps one P-state down per tick; queue pressure or
  /// high occupancy snaps it back to P0.
  bool dvfs = false;

  /// Migration: when the busiest machine holds at least `migration_gap`
  /// more tasks (running + queued + inbound) than the least-loaded
  /// awake machine, one running task moves there, landing after
  /// `migration_latency` us.
  bool migration = false;
  std::size_t migration_gap = 4;
  double migration_latency = 20'000.0;

  /// Arrival-stream budget passed to generate_arrivals().
  std::size_t max_arrivals = 1u << 20;

  /// Abort (ValueError) when no task starts or completes for this long
  /// while unfinished work remains; 0 picks max(1e6, 20 * tick_period).
  double stall_after = 0.0;

  /// Keep the full trace in the report (tests); the trace hash is
  /// always computed.
  bool record_trace = false;
};

/// Semantic trace of everything observable the engine did. The FNV-1a
/// hash over these records is the equivalence fingerprint of a run.
enum class TraceKind : std::uint8_t {
  arrival = 0,       // a = task
  start = 1,         // a = task, b = machine
  completion = 2,    // a = task, b = machine
  sleep_begin = 3,   // a = machine, b = target depth
  wake_begin = 4,    // a = machine
  state_settled = 5, // a = machine, b = depth (0 = awake)
  migrate_begin = 6, // a = task, b = target machine
  migrate_land = 7,  // a = task, b = target machine
  p_state = 8,       // a = machine, b = new P-state
};

struct TraceRecord {
  double time = 0.0;
  TraceKind kind = TraceKind::arrival;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// Everything one simulation run produced.
struct SimReport {
  std::string scheduler;
  std::size_t tasks = 0;            // arrivals simulated
  std::size_t completed = 0;
  double end_time = 0.0;            // completion instant of the last task
  double total_energy_j = 0.0;      // integral of power over [0, end_time]
  std::vector<double> machine_energy_j;
  double asleep_machine_seconds = 0.0;
  std::array<std::size_t, kSlaTierCount> sla_completed{};
  std::array<std::size_t, kSlaTierCount> sla_violated{};
  double mean_flow_time = 0.0;      // mean completion - arrival (us)
  double max_flow_time = 0.0;
  std::size_t migrations = 0;
  std::size_t sleep_transitions = 0;
  std::size_t p_state_changes = 0;
  std::size_t events = 0;           // events processed
  std::uint64_t trace_hash = 0;
  std::vector<TraceRecord> trace;   // only with SimOptions::record_trace

  /// violated / completed within the tier; 0.0 when none completed.
  double violation_rate(SlaTier tier) const;
  /// violated / completed across all tiers.
  double overall_violation_rate() const;
};

/// The discrete-event engine. One instance simulates one scheduler run;
/// construct per run. The scenario must outlive the engine.
class Engine {
 public:
  Engine(const Scenario& scenario, SimOptions options = {});

  /// Runs the simulation to completion and returns the report. One-shot:
  /// a second call throws.
  SimReport run(OnlineScheduler& scheduler);

  // --- scheduler-facing control surface -----------------------------

  double now() const noexcept { return now_; }
  const Scenario& scenario() const noexcept { return scenario_; }
  const SimOptions& options() const noexcept { return options_; }

  /// Expected runtimes over machine *instances* (task classes x
  /// machines, +infinity = cannot run), at each machine's top P-state.
  const core::EtcMatrix& etc() const noexcept { return etc_; }

  std::size_t machine_count() const noexcept { return machines_.size(); }
  /// Arrivals that exist so far (ids are dense, assigned in arrival
  /// order; ids >= this value have not arrived yet).
  std::size_t arrived_count() const noexcept { return arrived_; }
  std::size_t total_tasks() const noexcept { return arrivals_.size(); }

  std::size_t task_class_of(std::size_t task) const;
  double arrival_time_of(std::size_t task) const;
  bool task_done(std::size_t task) const;
  bool can_run(std::size_t task, std::size_t machine) const;

  /// Arrived tasks that have not started executing (pending or queued),
  /// ascending id — i.e. arrival order, the batch-mode scan order.
  std::vector<std::size_t> unstarted() const;

  /// Earliest instant machine j could begin a *new* task, ignoring its
  /// queued-but-unstarted work: now, plus any remaining wake latency,
  /// plus — when every core is occupied — the earliest running-task
  /// completion. This is the epoch base vector for batch replanning.
  std::vector<double> base_ready_times() const;

  /// base_ready_times() plus each machine's queued work drained at top
  /// speed across its cores — the completion-time estimate immediate
  /// (greedy) scheduling plans against.
  std::vector<double> ready_times() const;

  /// Returns every queued-but-unstarted task to the pending set (batch
  /// replanning begins here; running tasks are untouched).
  void recall_queued();

  /// Appends the task to the machine's run queue. The task must be
  /// pending or queued (re-assignment moves it) and the machine must be
  /// able to run it; a sleeping machine is woken automatically.
  void assign(std::size_t task, std::size_t machine);

  /// Moves a *running* task to another machine: progress is retained,
  /// the source core/memory free immediately, and the task lands on the
  /// target's queue after migration_latency. Returns false when the
  /// task is not currently running or already on the target; throws on
  /// an incompatible target.
  bool migrate(std::size_t task, std::size_t machine);

  /// Begins the transition to S-state `depth` (>= 1). The machine must
  /// be idle (no running or queued tasks); no-op when already sleeping
  /// or on its way. depth is clamped to the deepest defined S-state.
  void set_sleep(std::size_t machine, std::size_t depth);

  /// Begins waking a sleeping machine; no-op when awake or waking.
  void wake(std::size_t machine);

  /// Switches the machine-wide P-state (0 = fastest); in-flight task
  /// progress is accrued at the old rate and completions rescheduled.
  /// The machine must be awake.
  void set_p_state(std::size_t machine, std::size_t p);

  // --- introspection ------------------------------------------------

  std::size_t machine_class_of(std::size_t machine) const;
  bool awake(std::size_t machine) const;
  /// Current sleep depth (0 while awake or transitioning).
  std::size_t sleep_depth(std::size_t machine) const;
  std::size_t busy_cores(std::size_t machine) const;
  std::size_t queue_length(std::size_t machine) const;
  /// running + queued + migrating-inbound tasks, the balance metric the
  /// migration controller uses.
  std::size_t load_of(std::size_t machine) const;
  double free_memory(std::size_t machine) const;
  std::size_t p_state(std::size_t machine) const;

 private:
  enum class EventKind : std::uint8_t {
    arrival, completion, transition, migration, tick
  };
  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  // insertion order breaks time ties
    EventKind kind = EventKind::arrival;
    std::uint32_t id = 0;   // task or machine
    std::uint64_t gen = 0;  // staleness check for reschedulable events
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  enum class PowerState : std::uint8_t { awake, to_sleep, asleep, to_wake };

  struct Machine {
    std::uint32_t cls = 0;
    const MachineClass* spec = nullptr;
    PowerState power = PowerState::awake;
    std::size_t sleep_target = 0;   // transition destination depth
    std::size_t depth = 0;          // settled sleep depth
    bool wake_requested = false;
    double transition_done = 0.0;
    std::uint64_t gen = 0;          // transition-event staleness
    std::size_t p = 0;              // current P-state
    std::size_t busy = 0;
    double mem_free = 0.0;
    std::deque<std::uint32_t> queue;    // assigned, not started
    std::vector<std::uint32_t> running; // ascending task id
    std::size_t inbound = 0;            // migrations targeting this machine
    double last_accrual = 0.0;
    double last_activity = 0.0;         // last start/completion
    double energy_j = 0.0;
    double asleep_s = 0.0;
  };

  enum class TaskState : std::uint8_t {
    unborn, pending, queued, running, migrating, done
  };

  struct Task {
    std::uint32_t cls = 0;
    double arrival = 0.0;
    TaskState state = TaskState::unborn;
    double work_left = 0.0;      // instruction units (us x kReferenceMips)
    double progress_mark = 0.0;  // last instant work_left was accrued to
    std::uint32_t machine = 0;   // queued/running home; migrating target
    std::uint64_t gen = 0;       // completion/migration staleness
    double eta = 0.0;            // scheduled completion instant (running)
    double completion = 0.0;
  };

  // Electrical power (W) the machine draws right now.
  double power_draw(const Machine& m) const;
  // Integrates power into energy up to `now_` (call before any state
  // change that alters power_draw).
  void accrue(Machine& m);
  // Per-core execution rate (instruction units per us) at P-state p.
  double rate_of(const Machine& m) const;

  void trace(TraceKind kind, std::uint32_t a, std::uint32_t b);
  void push_event(double time, EventKind kind, std::uint32_t id,
                  std::uint64_t gen);

  void start_wake(Machine& m, std::uint32_t id);
  void dispatch_machine(std::uint32_t id);
  void dispatch_all();
  void schedule_completion(std::uint32_t task_id);
  void finish_task(std::uint32_t task_id);

  void on_arrival_event(const Event& ev);
  void on_completion_event(const Event& ev);
  void on_transition_event(const Event& ev);
  void on_migration_event(const Event& ev);
  void on_tick_event();

  void controller_power_gate();
  void controller_dvfs();
  void controller_migrate();

  const Scenario& scenario_;
  SimOptions options_;
  core::EtcMatrix etc_;
  std::vector<SimArrival> arrivals_;

  std::vector<Machine> machines_;
  std::vector<Task> tasks_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
  std::size_t arrived_ = 0;
  std::size_t completed_ = 0;
  double last_progress_ = 0.0;
  OnlineScheduler* scheduler_ = nullptr;
  bool ran_ = false;

  SimReport report_;
};

}  // namespace hetero::sim
