#include "sim/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <optional>
#include <string>

#include "base/error.hpp"
#include "sched/batch_engine.hpp"
#include "simd/simd.hpp"

namespace hetero::sim {

void OnlineScheduler::on_start(Engine&, std::size_t, std::size_t) {}
void OnlineScheduler::on_completion(Engine&, std::size_t, std::size_t) {}
void OnlineScheduler::on_tick(Engine&) {}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// First machine attaining the strict minimum of ready[j] + etc(type, j) —
// the same kernel scan and tie-break the sched:: heuristics use.
std::size_t best_machine(const core::EtcMatrix& etc,
                         const std::vector<double>& ready, std::size_t type,
                         double* best_ct_out = nullptr) {
  double best_ct = kInf, second_ct = kInf;
  std::size_t best = 0;
  simd::kernels().best_second_scan(etc.values().row(type).data(),
                                   ready.data(), etc.machine_count(),
                                   &best_ct, &second_ct, &best);
  if (best_ct_out) *best_ct_out = best_ct;
  return best;
}

// Immediate-mode MCT: each arrival is bound on the spot to the machine
// with the earliest estimated completion, queued work included.
class GreedyMct final : public OnlineScheduler {
 public:
  std::string_view name() const override { return "greedy_mct"; }

  void on_arrival(Engine& engine, std::size_t task) override {
    const std::vector<double> ready = engine.ready_times();
    const std::size_t j =
        best_machine(engine.etc(), ready, engine.task_class_of(task));
    engine.assign(task, j);
  }
};

// The batch twins re-plan the whole unstarted set on every arrival and
// completion. Both keep the set in the same *registration order* —
// arrival order, except that a task returned to the pool by a migration
// landing re-registers at the back when the next replan discovers it —
// so the cold reference scan and the BatchEngine's registration-order
// scan break every priority tie identically.
class PendingRegistry {
 public:
  // Appends unstarted tasks not yet registered (ascending id, so fresh
  // arrivals land at the back in arrival order).
  void sync(const std::vector<std::size_t>& unstarted) {
    for (const std::size_t t : unstarted) {
      if (t >= tracked_.size()) tracked_.resize(t + 1, 0);
      if (!tracked_[t]) {
        tracked_[t] = 1;
        order_.push_back(t);
        if (on_add) on_add(t);
      }
    }
  }

  // The task started executing: drop it from the registry.
  void drop(std::size_t task) {
    if (task >= tracked_.size() || !tracked_[task]) return;
    tracked_[task] = 0;
    order_.erase(std::find(order_.begin(), order_.end(), task));
    if (on_drop) on_drop(task);
  }

  const std::vector<std::size_t>& order() const { return order_; }

  std::function<void(std::size_t)> on_add;   // mirror into a planner
  std::function<void(std::size_t)> on_drop;

 private:
  std::vector<std::size_t> order_;
  std::vector<char> tracked_;  // by task id
};

// Batch-mode replanning, cold reference: every arrival or completion
// recalls all queued-but-unstarted work and re-runs the O(U^2 M)
// batch-mode greedy of sched/heuristics.cpp over the registered pending
// set against base_ready_times(). The equivalence yardstick for the
// BatchEngine-backed adapters below.
class ColdBatch final : public OnlineScheduler {
 public:
  explicit ColdBatch(bool max_min) : max_min_(max_min) {}

  std::string_view name() const override {
    return max_min_ ? "max_min" : "min_min";
  }

  void on_arrival(Engine& engine, std::size_t) override { replan(engine); }
  void on_start(Engine&, std::size_t task, std::size_t) override {
    registry_.drop(task);
  }
  void on_completion(Engine& engine, std::size_t, std::size_t) override {
    replan(engine);
  }

 private:
  void replan(Engine& engine) {
    engine.recall_queued();
    registry_.sync(engine.unstarted());
    const std::vector<std::size_t>& pending = registry_.order();
    if (pending.empty()) return;
    const core::EtcMatrix& etc = engine.etc();
    std::vector<double> ready = engine.base_ready_times();
    std::vector<char> mapped(pending.size(), 0);

    for (std::size_t round = 0; round < pending.size(); ++round) {
      double best_priority = -kInf;
      std::size_t chosen = 0, chosen_j = 0, chosen_type = 0;
      for (std::size_t k = 0; k < pending.size(); ++k) {
        if (mapped[k]) continue;
        const std::size_t type = engine.task_class_of(pending[k]);
        double best_ct = kInf;
        const std::size_t j = best_machine(etc, ready, type, &best_ct);
        const double p = max_min_ ? best_ct : -best_ct;
        if (p > best_priority) {
          best_priority = p;
          chosen = k;
          chosen_j = j;
          chosen_type = type;
        }
      }
      engine.assign(pending[chosen], chosen_j);
      ready[chosen_j] += etc(chosen_type, chosen_j);
      mapped[chosen] = 1;
    }
  }

  bool max_min_;
  PendingRegistry registry_;
};

// The same batch policies planned through the incremental BatchEngine:
// arrivals register slots, starts unregister them, and each replan is a
// warm epoch (begin_epoch diffs the ready vector and rescans only
// affected slots). Commit order, tie-breaks, and therefore the whole
// event trace match the cold twin bit for bit.
class BatchEngineScheduler final : public OnlineScheduler {
 public:
  explicit BatchEngineScheduler(bool max_min) : max_min_(max_min) {}

  std::string_view name() const override {
    return max_min_ ? "batch_max_min" : "batch_min_min";
  }

  void on_arrival(Engine& engine, std::size_t) override { replan(engine); }

  void on_start(Engine& engine, std::size_t task, std::size_t) override {
    planner(engine);  // ensure the registry mirror exists
    registry_.drop(task);
  }

  void on_completion(Engine& engine, std::size_t, std::size_t) override {
    replan(engine);
  }

 private:
  sched::BatchEngine& planner(Engine& engine) {
    if (!planner_) {
      planner_.emplace(engine.etc(), max_min_ ? sched::BatchPolicy::max_min
                                              : sched::BatchPolicy::min_min);
      registry_.on_add = [this, &engine](std::size_t t) {
        planner_->add_slot(t, engine.task_class_of(t));
      };
      registry_.on_drop = [this](std::size_t t) { planner_->remove_slot(t); };
    }
    return *planner_;
  }

  void replan(Engine& engine) {
    sched::BatchEngine& p = planner(engine);
    engine.recall_queued();
    registry_.sync(engine.unstarted());
    if (p.active_count() == 0) return;
    p.begin_epoch(engine.base_ready_times());
    p.plan([&engine](std::size_t slot, std::size_t machine) {
      engine.assign(slot, machine);
    });
  }

  bool max_min_;
  PendingRegistry registry_;
  std::optional<sched::BatchEngine> planner_;
};

}  // namespace

std::unique_ptr<OnlineScheduler> make_scheduler(std::string_view token) {
  if (token == "greedy_mct") return std::make_unique<GreedyMct>();
  if (token == "min_min") return std::make_unique<ColdBatch>(false);
  if (token == "max_min") return std::make_unique<ColdBatch>(true);
  if (token == "batch_min_min")
    return std::make_unique<BatchEngineScheduler>(false);
  if (token == "batch_max_min")
    return std::make_unique<BatchEngineScheduler>(true);
  throw ValueError("make_scheduler: unknown scheduler '" +
                   std::string(token) +
                   "' (valid: greedy_mct, min_min, max_min, batch_min_min, "
                   "batch_max_min)");
}

std::vector<std::string_view> scheduler_tokens() {
  return {"greedy_mct", "min_min", "max_min", "batch_min_min",
          "batch_max_min"};
}

}  // namespace hetero::sim
