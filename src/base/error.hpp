// Error types shared by every hetero substrate.
//
// The library reports contract violations (bad dimensions, invalid values)
// and algorithmic failures (non-convergence) through exceptions derived from
// hetero::Error, so callers can distinguish library failures from generic
// std::exception sources.
#pragma once

#include <stdexcept>
#include <string>

namespace hetero {

/// Root of the hetero exception hierarchy.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A matrix/vector dimension did not match the operation's contract.
class DimensionError : public Error {
 public:
  using Error::Error;
};

/// An argument value violated a precondition (e.g. negative ETC entry).
class ValueError : public Error {
 public:
  using Error::Error;
};

/// An iterative algorithm failed to converge within its iteration budget.
class ConvergenceError : public Error {
 public:
  using Error::Error;
};

/// A scaling iteration left the representable double range: a row/column
/// sum overflowed to infinity or collapsed to zero on an ill-conditioned
/// input, so continuing would silently propagate NaNs. Derives from
/// ValueError: the input, not the algorithm, is at fault.
class ScaleOverflowError : public ValueError {
 public:
  using ValueError::ValueError;
};

namespace detail {

/// Throws DimensionError with a formatted message when `ok` is false.
/// The const char* overloads matter: message arguments are evaluated
/// eagerly, and a std::string parameter would heap-allocate for every
/// literal longer than the small-string buffer even when `ok` holds —
/// measurable in per-proposal hot loops. Literals stay raw until a throw.
inline void require_dims(bool ok, const char* what) {
  if (!ok) throw DimensionError(what);
}

inline void require_dims(bool ok, const std::string& what) {
  if (!ok) throw DimensionError(what);
}

/// Throws ValueError with a formatted message when `ok` is false.
inline void require_value(bool ok, const char* what) {
  if (!ok) throw ValueError(what);
}

inline void require_value(bool ok, const std::string& what) {
  if (!ok) throw ValueError(what);
}

}  // namespace detail
}  // namespace hetero
