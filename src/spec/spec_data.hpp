// Embedded SPEC CPU2006Rate-derived ETC matrices (paper Section V, Figs 5-8).
//
// The paper extracts peak runtimes of the 12 SPEC CINT2006Rate and 17 SPEC
// CFP2006Rate benchmarks on the five machines of Fig. 5. The scanned paper
// loses every numeric table entry, and the original spec.org submissions are
// not available offline, so the matrices embedded here are *calibrated
// synthetic* data: runtimes on a realistic SPEC2006 scale, fitted with the
// library's own measure-targeted annealer (tools/calibrate_spec.cpp) so that
//
//   CINT: TDH = 0.90, MPH = 0.82, TMA = 0.07   (paper Fig. 6)
//   CFP:  TDH = 0.91, MPH = 0.83, TMA = 0.11   (paper Fig. 7; TMA digits
//                                               partially lost to OCR)
//
// and the Fig. 8 sub-extracts reproduce the paper's reported extreme values.
// See DESIGN.md §4 for the substitution rationale.
#pragma once

#include <string>
#include <vector>

#include "core/etc_matrix.hpp"

namespace hetero::spec {

/// One of the five machines of paper Fig. 5.
struct SpecMachine {
  std::string id;           // "m1".."m5"
  std::string description;  // full system name
};

/// The five machines (paper Fig. 5, verbatim).
const std::vector<SpecMachine>& spec_machines();

/// SPEC CINT2006Rate peak-runtime ETC matrix, 12 task types x 5 machines
/// (calibrated to paper Fig. 6).
const core::EtcMatrix& spec_cint2006rate();

/// SPEC CFP2006Rate peak-runtime ETC matrix, 17 task types x 5 machines
/// (calibrated to paper Fig. 7).
const core::EtcMatrix& spec_cfp2006rate();

/// Fig. 8(a): rows {omnetpp (CINT), cactusADM (CFP)}, machines {m4, m5} —
/// the paper's example of a low-TMA 2x2 extract.
core::EtcMatrix spec_fig8a();

/// Fig. 8(b): rows {cactusADM, soplex} (both CFP), machines {m1, m4} — the
/// paper's example of a high-TMA 2x2 extract.
core::EtcMatrix spec_fig8b();

}  // namespace hetero::spec
