#include "spec/spec_data.hpp"

#include <array>

namespace hetero::spec {
namespace {

#include "spec/spec_data_values.inc"

const std::vector<std::string> kCintNames = {
    "400.perlbench", "401.bzip2",      "403.gcc",    "429.mcf",
    "445.gobmk",     "456.hmmer",      "458.sjeng",  "462.libquantum",
    "464.h264ref",   "471.omnetpp",    "473.astar",  "483.xalancbmk"};

const std::vector<std::string> kCfpNames = {
    "410.bwaves",  "416.gamess",    "433.milc",     "434.zeusmp",
    "435.gromacs", "436.cactusADM", "437.leslie3d", "444.namd",
    "447.dealII",  "450.soplex",    "453.povray",   "454.calculix",
    "459.GemsFDTD", "465.tonto",    "470.lbm",      "481.wrf",
    "482.sphinx3"};

std::vector<std::string> machine_ids() { return {"m1", "m2", "m3", "m4", "m5"}; }

}  // namespace

const std::vector<SpecMachine>& spec_machines() {
  static const std::vector<SpecMachine> machines = {
      {"m1", "ASUS TS100-E6 (P7F-X) server system (Intel Xeon X3470)"},
      {"m2", "Fujitsu SPARC Enterprise M3000"},
      {"m3", "CELSIUS W280 (Intel Core i7-870)"},
      {"m4", "ProLiant SL165z G7 (2.2 GHz AMD Opteron 6174)"},
      {"m5", "IBM Power 750 Express (3.55 GHz, 32 core, SLES)"},
  };
  return machines;
}

const core::EtcMatrix& spec_cint2006rate() {
  static const core::EtcMatrix matrix = [] {
    return core::EtcMatrix(
        linalg::Matrix::from_row_major(12, 5, kCintValues), kCintNames,
        machine_ids());
  }();
  return matrix;
}

const core::EtcMatrix& spec_cfp2006rate() {
  static const core::EtcMatrix matrix = [] {
    return core::EtcMatrix(
        linalg::Matrix::from_row_major(17, 5, kCfpValues), kCfpNames,
        machine_ids());
  }();
  return matrix;
}

core::EtcMatrix spec_fig8a() {
  const auto& cint = spec_cint2006rate();
  const auto& cfp = spec_cfp2006rate();
  const std::size_t omnetpp = cint.task_index("471.omnetpp");
  const std::size_t cactus = cfp.task_index("436.cactusADM");
  // Machines m4, m5 are columns 3 and 4.
  linalg::Matrix values{{cint(omnetpp, 3), cint(omnetpp, 4)},
                        {cfp(cactus, 3), cfp(cactus, 4)}};
  return core::EtcMatrix(std::move(values), {"471.omnetpp", "436.cactusADM"},
                         {"m4", "m5"});
}

core::EtcMatrix spec_fig8b() {
  const auto& cfp = spec_cfp2006rate();
  const std::size_t cactus = cfp.task_index("436.cactusADM");
  const std::size_t soplex = cfp.task_index("450.soplex");
  // Machines m1, m4 are columns 0 and 3.
  linalg::Matrix values{{cfp(cactus, 0), cfp(cactus, 3)},
                        {cfp(soplex, 0), cfp(soplex, 3)}};
  return core::EtcMatrix(std::move(values), {"436.cactusADM", "450.soplex"},
                         {"m1", "m4"});
}

}  // namespace hetero::spec
