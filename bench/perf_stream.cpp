// Streaming characterization microbenchmarks: the delta-maintained
// MeasureView against the full-recompute baseline it replaces.
//
// Suites (Args = {tasks, machines}):
//   BM_ViewWarmUpdate      — one-cell revision through the warm path
//                            (incremental sums + warm Sinkhorn + warm
//                            eigensolve); the steady-state streaming cost
//   BM_ViewChurnWarm       — a 1% entry-churn batch through set_entries
//                            (one warm re-evaluation for the whole batch)
//   BM_ViewChurnCold       — the same churn paid as a from-scratch rebuild
//                            of the view's own pipeline (cold_measures,
//                            the equivalence twin)
//   BM_ChurnFullRecompute  — the same churn paid the way a client of the
//                            pre-streaming service had to: a fresh
//                            `measures`-path core::measure_set per
//                            revision. The BENCH_pr9 speedup quotes warm
//                            churn against this baseline
//   BM_ViewColdRefresh     — a forced refresh() on the live view (equals
//                            ChurnCold work plus state reseeding)
//   BM_EstimatorObserve    — EtcEstimator::observe with the materiality
//                            gate mostly closed (the per-observation cost
//                            of a noisy-but-stationary stream)
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/etc_estimator.hpp"
#include "core/etc_matrix.hpp"
#include "core/measure_view.hpp"
#include "core/measures.hpp"
#include "etcgen/rng.hpp"
#include "linalg/matrix.hpp"

namespace {

using hetero::core::CellDelta;
using hetero::core::EtcEstimator;
using hetero::core::MeasureView;
using hetero::linalg::Matrix;

Matrix random_ecs(std::size_t tasks, std::size_t machines,
                  std::uint64_t seed) {
  hetero::etcgen::Rng rng(seed);
  Matrix m(tasks, machines);
  for (std::size_t i = 0; i < tasks; ++i)
    for (std::size_t j = 0; j < machines; ++j)
      m(i, j) = hetero::etcgen::uniform(rng, 0.05, 4.0);
  return m;
}

// Pre-generated churn batches revising `fraction` of the matrix's cells,
// cycling cell positions and alternating values so consecutive batches
// keep moving the matrix instead of writing the same numbers back.
std::vector<std::vector<CellDelta>> churn_batches(std::size_t tasks,
                                                  std::size_t machines,
                                                  double fraction,
                                                  std::size_t batches) {
  const std::size_t cells = tasks * machines;
  const std::size_t per_batch = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(cells) * fraction));
  std::vector<std::vector<CellDelta>> out(batches);
  std::size_t cell = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    out[b].reserve(per_batch);
    for (std::size_t k = 0; k < per_batch; ++k, ++cell) {
      const std::size_t flat = cell % cells;
      out[b].push_back(CellDelta{
          flat / machines, flat % machines,
          1.0 + 0.25 * static_cast<double>(cell % 5)});
    }
  }
  return out;
}

void BM_ViewWarmUpdate(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const auto machines = static_cast<std::size_t>(state.range(1));
  MeasureView view(random_ecs(tasks, machines, 11));
  std::size_t cell = 0;
  for (auto _ : state) {
    const std::size_t flat = cell % (tasks * machines);
    view.set_entry(flat / machines, flat % machines,
                   1.0 + 0.25 * static_cast<double>(cell % 5));
    benchmark::DoNotOptimize(view.current());
    ++cell;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["cold_refreshes"] = benchmark::Counter(
      static_cast<double>(view.stats().cold_refreshes));
}
BENCHMARK(BM_ViewWarmUpdate)->Args({128, 16})->Args({1024, 64});

void BM_ViewChurnWarm(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const auto machines = static_cast<std::size_t>(state.range(1));
  MeasureView view(random_ecs(tasks, machines, 13));
  const auto batches = churn_batches(tasks, machines, 0.01, 16);
  std::size_t b = 0;
  for (auto _ : state) {
    view.set_entries(batches[b % batches.size()]);
    benchmark::DoNotOptimize(view.current());
    ++b;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["cells_per_batch"] =
      benchmark::Counter(static_cast<double>(batches[0].size()));
  state.counters["cold_refreshes"] = benchmark::Counter(
      static_cast<double>(view.stats().cold_refreshes));
}
BENCHMARK(BM_ViewChurnWarm)->Args({128, 16})->Args({1024, 64});

void BM_ViewChurnCold(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const auto machines = static_cast<std::size_t>(state.range(1));
  // Mutate a plain matrix by the same churn batches, paying a full
  // from-scratch recompute per batch — what a stateless service does for
  // every revision.
  Matrix ecs = random_ecs(tasks, machines, 13);
  const auto batches = churn_batches(tasks, machines, 0.01, 16);
  std::size_t b = 0;
  for (auto _ : state) {
    for (const CellDelta& d : batches[b % batches.size()])
      ecs(d.task, d.machine) = d.value;
    benchmark::DoNotOptimize(MeasureView::cold_measures(ecs));
    ++b;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ViewChurnCold)->Args({128, 16})->Args({1024, 64});

void BM_ChurnFullRecompute(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const auto machines = static_cast<std::size_t>(state.range(1));
  Matrix ecs = random_ecs(tasks, machines, 13);
  const auto batches = churn_batches(tasks, machines, 0.01, 16);
  std::size_t b = 0;
  for (auto _ : state) {
    for (const CellDelta& d : batches[b % batches.size()])
      ecs(d.task, d.machine) = d.value;
    benchmark::DoNotOptimize(
        hetero::core::measure_set(hetero::core::EcsMatrix(ecs)));
    ++b;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChurnFullRecompute)->Args({128, 16})->Args({1024, 64});

void BM_ViewColdRefresh(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const auto machines = static_cast<std::size_t>(state.range(1));
  MeasureView view(random_ecs(tasks, machines, 17));
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.refresh());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ViewColdRefresh)->Args({128, 16})->Args({1024, 64});

void BM_EstimatorObserve(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const auto machines = static_cast<std::size_t>(state.range(1));
  Matrix etc(tasks, machines, 10.0);
  EtcEstimator est(etc);
  // Observations hover around the seeded mean: the materiality gate stays
  // mostly closed, isolating the per-observation tracking cost.
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t flat = i % (tasks * machines);
    benchmark::DoNotOptimize(
        est.observe(flat / machines, flat % machines,
                    10.0 + 0.01 * static_cast<double>(i % 3)));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EstimatorObserve)->Args({128, 16})->Args({1024, 64});

}  // namespace
