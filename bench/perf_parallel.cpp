// Microbenchmark of the parallel_for dispatch paths. The library's
// parallel_for claims chunks off a shared atomic counter with the caller
// participating — no per-chunk std::function allocation, no futures. The
// *Legacy variants reproduce the pre-optimization scheme (one submitted
// std::function and one std::future per chunk, drained in index order) so
// the dispatch overhead is measured head to head on identical bodies.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace {

using hetero::par::ThreadPool;

// Pre-optimization parallel_for, copied verbatim from the old
// implementation: a heap-allocated job and a future per chunk.
void legacy_parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& f,
                         std::size_t grain) {
  if (begin >= end) return;
  std::vector<std::future<void>> futures;
  futures.reserve((end - begin + grain - 1) / grain);
  for (std::size_t lo = begin; lo < end; lo += grain) {
    const std::size_t hi = std::min(end, lo + grain);
    futures.push_back(pool.submit([&f, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) f(i);
    }));
  }
  for (auto& fut : futures) fut.get();
}

// Cheap per-iteration body: dispatch overhead dominates, which is exactly
// what the fast path removes.
void BM_ParallelForClaiming(benchmark::State& state) {
  ThreadPool pool;
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> out(n, 0.0);
  for (auto _ : state) {
    hetero::par::parallel_for(
        pool, 0, n, [&](std::size_t i) { out[i] += static_cast<double>(i); },
        16);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelForClaiming)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_ParallelForLegacy(benchmark::State& state) {
  ThreadPool pool;
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> out(n, 0.0);
  const std::function<void(std::size_t)> body = [&](std::size_t i) {
    out[i] += static_cast<double>(i);
  };
  for (auto _ : state) {
    legacy_parallel_for(pool, 0, n, body, 16);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelForLegacy)->Arg(1024)->Arg(16384)->Arg(131072);

}  // namespace
