// Closed-loop load generator for the characterization service layer.
//
// Each google-benchmark thread is one synchronous client: it submits a
// request through Server::submit and blocks on the response before issuing
// the next — the closed loop the acceptance numbers in docs/performance.md
// quote. ->Threads(1/4/16) sweeps client concurrency against a shared
// server; requests/s is the reported items_per_second.
//
// Suites:
//   BM_ServiceCharacterizeWarm  — one 128x16 matrix, cache hit after the
//                                 first request (the steady-state fleet
//                                 re-characterization path)
//   BM_ServiceCharacterizeCold  — every request a distinct matrix (pure
//                                 compute path, cache always misses)
//   BM_ServiceScheduleWarm      — min_min schedule of the same matrix
//   BM_ServiceHitRateSweep      — clients cycle through K matrices with a
//                                 cache sized for a fraction of them; the
//                                 measured hit rate is reported as a
//                                 counter
//   BM_ServiceHandleInline      — queue/pool bypassed (Server::handle), to
//                                 separate protocol+pipeline cost from
//                                 dispatch cost
#include <benchmark/benchmark.h>

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "etcgen/range_based.hpp"
#include "etcgen/rng.hpp"
#include "io/json.hpp"
#include "svc/server.hpp"

namespace {

using hetero::svc::Server;
using hetero::svc::ServerOptions;

std::string request_line(const hetero::core::EtcMatrix& etc,
                         const char* kind, const char* extra) {
  std::string line = "{\"kind\":\"";
  line += kind;
  line += '"';
  line += extra;
  line += ",\"etc\":";
  line += hetero::io::to_json(etc);
  line += '}';
  return line;
}

hetero::core::EtcMatrix make_matrix(std::size_t tasks, std::size_t machines,
                                    std::uint64_t seed) {
  hetero::etcgen::Rng rng(seed);
  hetero::etcgen::RangeBasedOptions options;
  options.tasks = tasks;
  options.machines = machines;
  return hetero::etcgen::generate_range_based(options, rng);
}

/// Blocks the calling benchmark thread until the response arrives — the
/// closed loop.
std::string call(Server& server, const std::string& line) {
  std::mutex m;
  std::condition_variable cv;
  std::string response;
  bool done = false;
  server.submit(line, [&](std::string r) {
    // Notify under the lock: the caller destroys cv as soon as done flips.
    const std::scoped_lock lock(m);
    response = std::move(r);
    done = true;
    cv.notify_one();
  });
  std::unique_lock lock(m);
  cv.wait(lock, [&] { return done; });
  return response;
}

// Shared across the benchmark's threads; constructed by thread 0.
std::unique_ptr<Server> g_server;

void setup_server(const benchmark::State& state, ServerOptions options) {
  if (state.thread_index() == 0) g_server = std::make_unique<Server>(options);
}

void teardown_server(const benchmark::State& state) {
  if (state.thread_index() == 0) g_server.reset();
}

void BM_ServiceCharacterizeWarm(benchmark::State& state) {
  setup_server(state, {});
  static std::string line;
  if (state.thread_index() == 0)
    line = request_line(make_matrix(128, 16, 7), "characterize", "");
  std::size_t processed = 0;
  for (auto _ : state) {
    const std::string response = call(*g_server, line);
    benchmark::DoNotOptimize(response.data());
    ++processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  teardown_server(state);
}
BENCHMARK(BM_ServiceCharacterizeWarm)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime();

void BM_ServiceCharacterizeCold(benchmark::State& state) {
  // A 2-entry cache cycled over 64 distinct matrices: effectively every
  // request takes the full compute path.
  ServerOptions options;
  options.cache_shards = 1;
  options.cache_capacity_per_shard = 2;
  setup_server(state, options);
  // Pre-generate distinct matrices so generation cost stays out of the
  // loop.
  constexpr std::size_t kDistinct = 64;
  static std::vector<std::string> lines;
  if (state.thread_index() == 0) {
    lines.clear();
    for (std::size_t i = 0; i < kDistinct; ++i)
      lines.push_back(request_line(
          make_matrix(128, 16, 1000 + i),
          "characterize", ""));
  }
  std::size_t i = static_cast<std::size_t>(state.thread_index()) * 17;
  std::size_t processed = 0;
  for (auto _ : state) {
    const std::string response = call(*g_server, lines[i % kDistinct]);
    benchmark::DoNotOptimize(response.data());
    i += 1;
    ++processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  teardown_server(state);
}
BENCHMARK(BM_ServiceCharacterizeCold)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime();

void BM_ServiceScheduleWarm(benchmark::State& state) {
  setup_server(state, {});
  static std::string line;
  if (state.thread_index() == 0)
    line = request_line(make_matrix(128, 16, 9), "schedule",
                        ",\"heuristic\":\"min_min\"");
  std::size_t processed = 0;
  for (auto _ : state) {
    const std::string response = call(*g_server, line);
    benchmark::DoNotOptimize(response.data());
    ++processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  teardown_server(state);
}
BENCHMARK(BM_ServiceScheduleWarm)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime();

// Cache hit-rate sweep: K distinct matrices cycled by every client against
// a cache of fixed total capacity. range(0) = K; the resulting hit rate
// lands as the "hit_rate" counter (1 - K/capacity-ish once K exceeds
// capacity).
void BM_ServiceHitRateSweep(benchmark::State& state) {
  ServerOptions options;
  options.cache_shards = 4;
  options.cache_capacity_per_shard = 8;  // 32 cached results total
  setup_server(state, options);
  const auto distinct = static_cast<std::size_t>(state.range(0));
  static std::vector<std::string> lines;
  if (state.thread_index() == 0) {
    lines.clear();
    for (std::size_t i = 0; i < distinct; ++i)
      lines.push_back(
          request_line(make_matrix(32, 8, 500 + i), "measures", ""));
  }
  std::size_t i = static_cast<std::size_t>(state.thread_index());
  std::size_t processed = 0;
  for (auto _ : state) {
    const std::string response = call(*g_server, lines[i % distinct]);
    benchmark::DoNotOptimize(response.data());
    i += 1;
    ++processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  if (state.thread_index() == 0) {
    const auto stats = g_server->cache().stats();
    const auto total = static_cast<double>(stats.hits + stats.misses);
    state.counters["hit_rate"] = benchmark::Counter(
        total == 0.0 ? 0.0 : static_cast<double>(stats.hits) / total);
  }
  teardown_server(state);
}
BENCHMARK(BM_ServiceHitRateSweep)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Threads(4)
    ->UseRealTime();

void BM_ServiceHandleInline(benchmark::State& state) {
  Server server;
  const std::string line =
      request_line(make_matrix(128, 16, 7), "characterize", "");
  for (auto _ : state) {
    const std::string response = server.handle(line);
    benchmark::DoNotOptimize(response.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServiceHandleInline);

}  // namespace
