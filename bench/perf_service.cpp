// Closed-loop load generator for the characterization service layer.
//
// Each google-benchmark thread is one synchronous client: it submits a
// request through Server::submit and blocks on the response before issuing
// the next — the closed loop the acceptance numbers in docs/performance.md
// quote. ->Threads(1/4/16) sweeps client concurrency against a shared
// server; requests/s is the reported items_per_second.
//
// Suites:
//   BM_ServiceCharacterizeWarm  — one 128x16 matrix, cache hit after the
//                                 first request (the steady-state fleet
//                                 re-characterization path)
//   BM_ServiceCharacterizeCold  — every request a distinct matrix (pure
//                                 compute path, cache always misses)
//   BM_ServiceScheduleWarm      — min_min schedule of the same matrix
//   BM_ServiceHitRateSweep      — clients cycle through K matrices with a
//                                 cache sized for a fraction of them; the
//                                 measured hit rate is reported as a
//                                 counter
//   BM_ServiceHandleInline      — queue/pool bypassed (Server::handle), to
//                                 separate protocol+pipeline cost from
//                                 dispatch cost
//
// TCP harness mode (bypasses google-benchmark; this is the BENCH_pr7
// number): `perf_service --clients=N` starts an in-process epoll
// EventLoopServer and drives it over real sockets with the non-blocking
// loadgen harness, printing one JSON report line (throughput +
// p50/p90/p99) to stdout. The process exits non-zero if any response was
// malformed or dropped, any connect failed, or the run timed out — a
// benchmark number can never paper over a broken server. Flags:
//
//   --clients=N       concurrent connections (required to enter this mode)
//   --requests=M      requests per client (default 100)
//   --workers=N       event-loop threads (default 1)
//   --threads=N       compute pool threads (default: hw concurrency)
//   --pipeline=K      in-flight requests per connection (default 1)
//   --open-rps=R      open-loop arrival rate across all clients
//                     (default 0 = closed loop)
//   --distinct=D      cycle D distinct matrices (default 1 = pure warm)
//   --connect=H:P     drive an external server instead of in-process
//   --stream=1        delta-stream workload: every client subscribes once
//                     (loadgen prologue, excluded from the measured
//                     numbers) and then streams `update` requests revising
//                     cells of its session's matrix — the BENCH_pr9
//                     updates/sec number
//   --stream-size=RxC subscribe matrix shape in stream mode (default
//                     128x16)
//   --stream-batch=K  cells revised per update request (default 1)
#include <benchmark/benchmark.h>

#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "etcgen/range_based.hpp"
#include "etcgen/rng.hpp"
#include "io/json.hpp"
#include "svc/event_loop.hpp"
#include "svc/loadgen.hpp"
#include "svc/server.hpp"

namespace {

using hetero::svc::Server;
using hetero::svc::ServerOptions;

std::string request_line(const hetero::core::EtcMatrix& etc,
                         const char* kind, const char* extra) {
  std::string line = "{\"kind\":\"";
  line += kind;
  line += '"';
  line += extra;
  line += ",\"etc\":";
  line += hetero::io::to_json(etc);
  line += '}';
  return line;
}

hetero::core::EtcMatrix make_matrix(std::size_t tasks, std::size_t machines,
                                    std::uint64_t seed) {
  hetero::etcgen::Rng rng(seed);
  hetero::etcgen::RangeBasedOptions options;
  options.tasks = tasks;
  options.machines = machines;
  return hetero::etcgen::generate_range_based(options, rng);
}

/// Blocks the calling benchmark thread until the response arrives — the
/// closed loop.
std::string call(Server& server, const std::string& line) {
  std::mutex m;
  std::condition_variable cv;
  std::string response;
  bool done = false;
  server.submit(line, [&](std::string r) {
    // Notify under the lock: the caller destroys cv as soon as done flips.
    const std::scoped_lock lock(m);
    response = std::move(r);
    done = true;
    cv.notify_one();
  });
  std::unique_lock lock(m);
  cv.wait(lock, [&] { return done; });
  // A dropped or malformed response must fail the benchmark run, not
  // silently skew its numbers.
  if (response.find("\"ok\":") == std::string::npos) {
    std::fprintf(stderr, "perf_service: malformed response: %s\n",
                 response.c_str());
    std::abort();
  }
  return response;
}

// Shared across the benchmark's threads; constructed by thread 0.
std::unique_ptr<Server> g_server;

void setup_server(const benchmark::State& state, ServerOptions options) {
  if (state.thread_index() == 0) g_server = std::make_unique<Server>(options);
}

void teardown_server(const benchmark::State& state) {
  if (state.thread_index() == 0) g_server.reset();
}

void BM_ServiceCharacterizeWarm(benchmark::State& state) {
  setup_server(state, {});
  static std::string line;
  if (state.thread_index() == 0)
    line = request_line(make_matrix(128, 16, 7), "characterize", "");
  std::size_t processed = 0;
  for (auto _ : state) {
    const std::string response = call(*g_server, line);
    benchmark::DoNotOptimize(response.data());
    ++processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  teardown_server(state);
}
BENCHMARK(BM_ServiceCharacterizeWarm)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime();

void BM_ServiceCharacterizeCold(benchmark::State& state) {
  // A 2-entry cache cycled over 64 distinct matrices: effectively every
  // request takes the full compute path.
  ServerOptions options;
  options.cache_shards = 1;
  options.cache_capacity_per_shard = 2;
  setup_server(state, options);
  // Pre-generate distinct matrices so generation cost stays out of the
  // loop.
  constexpr std::size_t kDistinct = 64;
  static std::vector<std::string> lines;
  if (state.thread_index() == 0) {
    lines.clear();
    for (std::size_t i = 0; i < kDistinct; ++i)
      lines.push_back(request_line(
          make_matrix(128, 16, 1000 + i),
          "characterize", ""));
  }
  std::size_t i = static_cast<std::size_t>(state.thread_index()) * 17;
  std::size_t processed = 0;
  for (auto _ : state) {
    const std::string response = call(*g_server, lines[i % kDistinct]);
    benchmark::DoNotOptimize(response.data());
    i += 1;
    ++processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  teardown_server(state);
}
BENCHMARK(BM_ServiceCharacterizeCold)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime();

void BM_ServiceScheduleWarm(benchmark::State& state) {
  setup_server(state, {});
  static std::string line;
  if (state.thread_index() == 0)
    line = request_line(make_matrix(128, 16, 9), "schedule",
                        ",\"heuristic\":\"min_min\"");
  std::size_t processed = 0;
  for (auto _ : state) {
    const std::string response = call(*g_server, line);
    benchmark::DoNotOptimize(response.data());
    ++processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  teardown_server(state);
}
BENCHMARK(BM_ServiceScheduleWarm)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime();

// Cache hit-rate sweep: K distinct matrices cycled by every client against
// a cache of fixed total capacity. range(0) = K; the resulting hit rate
// lands as the "hit_rate" counter (1 - K/capacity-ish once K exceeds
// capacity).
void BM_ServiceHitRateSweep(benchmark::State& state) {
  ServerOptions options;
  options.cache_shards = 4;
  options.cache_capacity_per_shard = 8;  // 32 cached results total
  setup_server(state, options);
  const auto distinct = static_cast<std::size_t>(state.range(0));
  static std::vector<std::string> lines;
  if (state.thread_index() == 0) {
    lines.clear();
    for (std::size_t i = 0; i < distinct; ++i)
      lines.push_back(
          request_line(make_matrix(32, 8, 500 + i), "measures", ""));
  }
  std::size_t i = static_cast<std::size_t>(state.thread_index());
  std::size_t processed = 0;
  for (auto _ : state) {
    const std::string response = call(*g_server, lines[i % distinct]);
    benchmark::DoNotOptimize(response.data());
    i += 1;
    ++processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  if (state.thread_index() == 0) {
    const auto stats = g_server->cache().stats();
    const auto total = static_cast<double>(stats.hits + stats.misses);
    state.counters["hit_rate"] = benchmark::Counter(
        total == 0.0 ? 0.0 : static_cast<double>(stats.hits) / total);
  }
  teardown_server(state);
}
BENCHMARK(BM_ServiceHitRateSweep)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Threads(4)
    ->UseRealTime();

void BM_ServiceHandleInline(benchmark::State& state) {
  Server server;
  const std::string line =
      request_line(make_matrix(128, 16, 7), "characterize", "");
  for (auto _ : state) {
    const std::string response = server.handle(line);
    benchmark::DoNotOptimize(response.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServiceHandleInline);

// ---------------------------------------------------------------------------
// TCP harness mode (--clients=N).

struct HarnessOptions {
  std::size_t clients = 0;  // 0 = harness mode not requested
  std::size_t requests = 100;
  std::size_t workers = 1;
  std::size_t threads = 0;
  std::size_t pipeline = 1;
  double open_rps = 0.0;
  std::size_t distinct = 1;
  bool stream = false;
  std::size_t stream_tasks = 128;
  std::size_t stream_machines = 16;
  std::size_t stream_batch = 1;
  std::string connect_host;  // empty = in-process server
  std::uint16_t connect_port = 0;
};

// Extracts --key=value flags this harness owns, compacting argv so the
// rest still flows into benchmark::Initialize. Returns false on a
// malformed value.
bool parse_harness_args(int* argc, char** argv, HarnessOptions* h) {
  int kept = 1;
  bool ok = true;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::string(prefix).size();
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    try {
      const char* v = nullptr;
      if ((v = value("--clients=")) != nullptr) {
        h->clients = std::stoul(v);
      } else if ((v = value("--requests=")) != nullptr) {
        h->requests = std::stoul(v);
      } else if ((v = value("--workers=")) != nullptr) {
        h->workers = std::stoul(v);
      } else if ((v = value("--threads=")) != nullptr) {
        h->threads = std::stoul(v);
      } else if ((v = value("--pipeline=")) != nullptr) {
        h->pipeline = std::stoul(v);
      } else if ((v = value("--open-rps=")) != nullptr) {
        h->open_rps = std::stod(v);
      } else if ((v = value("--distinct=")) != nullptr) {
        h->distinct = std::stoul(v);
      } else if ((v = value("--stream=")) != nullptr) {
        h->stream = std::stoul(v) != 0;
      } else if ((v = value("--stream-size=")) != nullptr) {
        const std::string rc = v;
        const auto x = rc.find('x');
        if (x == std::string::npos) return false;
        h->stream_tasks = std::stoul(rc.substr(0, x));
        h->stream_machines = std::stoul(rc.substr(x + 1));
      } else if ((v = value("--stream-batch=")) != nullptr) {
        h->stream_batch = std::stoul(v);
      } else if ((v = value("--connect=")) != nullptr) {
        const std::string hp = v;
        const auto colon = hp.rfind(':');
        if (colon == std::string::npos) return false;
        h->connect_host = hp.substr(0, colon);
        h->connect_port =
            static_cast<std::uint16_t>(std::stoul(hp.substr(colon + 1)));
      } else {
        argv[kept++] = argv[i];
      }
    } catch (const std::exception&) {
      ok = false;
    }
  }
  *argc = kept;
  return ok;
}

// Delta-stream workload: `update` request lines cycling over distinct
// cells of the subscribed matrix, `batch` cells per request, values
// alternating between two positive levels so every update genuinely moves
// the matrix (and the session's warm re-evaluation runs every time).
std::vector<std::string> stream_update_lines(std::size_t tasks,
                                             std::size_t machines,
                                             std::size_t batch) {
  constexpr std::size_t kDistinctLines = 64;
  std::vector<std::string> lines;
  std::size_t cell = 0;
  for (std::size_t i = 0; i < kDistinctLines; ++i) {
    std::string line = "{\"kind\":\"update\",\"set\":[";
    for (std::size_t b = 0; b < batch; ++b, ++cell) {
      const std::size_t task = cell % tasks;
      const std::size_t machine = (cell / tasks) % machines;
      const double value = 1.0 + 0.25 * static_cast<double>(cell % 5);
      if (b > 0) line += ',';
      line += "{\"task\":" + std::to_string(task) +
              ",\"machine\":" + std::to_string(machine) +
              ",\"etc\":" + std::to_string(value) + "}";
    }
    line += "]}";
    lines.push_back(std::move(line));
  }
  return lines;
}

int run_harness(const HarnessOptions& h) {
  std::vector<std::string> lines;
  hetero::svc::LoadGenOptions gen;
  if (h.stream) {
    const std::size_t batch = std::max<std::size_t>(1, h.stream_batch);
    gen.prologue_lines.push_back(request_line(
        make_matrix(h.stream_tasks, h.stream_machines, 7), "subscribe", ""));
    lines = stream_update_lines(h.stream_tasks, h.stream_machines, batch);
  } else {
    const std::size_t distinct = h.distinct == 0 ? 1 : h.distinct;
    for (std::size_t i = 0; i < distinct; ++i)
      lines.push_back(
          request_line(make_matrix(128, 16, 7 + i), "characterize", ""));
  }

  gen.clients = h.clients;
  gen.requests_per_client = h.requests;
  gen.pipeline = h.pipeline;
  gen.open_loop_rps = h.open_rps;

  std::unique_ptr<Server> server;
  std::unique_ptr<hetero::svc::EventLoopServer> loop;
  if (h.connect_host.empty()) {
    ServerOptions options;
    options.threads = h.threads;
    // Admission depth sized to the client population so a cold burst is
    // absorbed instead of bouncing off a 256-deep queue.
    options.queue_depth = std::max<std::size_t>(1024, h.clients * 2);
    server = std::make_unique<Server>(options);
    hetero::svc::EventLoopOptions loop_options;
    loop_options.workers = h.workers;
    loop = std::make_unique<hetero::svc::EventLoopServer>(*server,
                                                          loop_options);
    if (!loop->start(std::cerr)) return 1;
    gen.host = "127.0.0.1";
    gen.port = loop->port();
  } else {
    gen.host = h.connect_host;
    gen.port = h.connect_port;
  }

  const auto report = hetero::svc::run_load(lines, gen);
  if (loop) {
    loop->request_shutdown();
    loop->wait();
  }
  std::cout << report.to_json() << '\n';
  if (!report.ok) {
    std::cerr << "perf_service: load run FAILED (connect_failures="
              << report.connect_failures << " malformed=" << report.malformed
              << " dropped=" << report.dropped << " timed_out="
              << (report.timed_out ? "yes" : "no") << ")\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  HarnessOptions harness;
  if (!parse_harness_args(&argc, argv, &harness)) {
    std::cerr << "perf_service: malformed harness flag\n";
    return 2;
  }
  if (harness.clients > 0 || !harness.connect_host.empty()) {
    if (harness.clients == 0) harness.clients = 100;
    return run_harness(harness);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
