// Ablation of the standardization procedure (eq. 9):
//   1. tolerance sweep — iterations needed vs stopping tolerance on the
//      SPEC matrices (the paper reports 6 / 7 iterations at 1e-8);
//   2. ordering — column-first (the paper's eq. 9) vs row-first reach the
//      same standard form (D1, D2 are unique up to a scalar, Theorem 1);
//   3. the total-support-core projection — without it, limit-only patterns
//      converge at O(1/k) and blow the iteration budget.
#include <iostream>

#include "core/standard_form.hpp"
#include "io/table.hpp"
#include "linalg/matrix.hpp"
#include "spec/spec_data.hpp"

int main() {
  using hetero::io::format_fixed;
  using hetero::io::format_general;
  namespace core = hetero::core;

  const auto cint = hetero::spec::spec_cint2006rate().to_ecs().values();
  const auto cfp = hetero::spec::spec_cfp2006rate().to_ecs().values();

  std::cout << "1. Iterations vs stopping tolerance (geometric convergence "
               "on positive matrices)\n\n";
  hetero::io::Table t1({"tolerance", "CINT iterations", "CFP iterations"});
  for (const double tol : {1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12}) {
    core::SinkhornOptions opts;
    opts.tolerance = tol;
    t1.add_row({format_general(tol),
                std::to_string(core::standardize(cint, opts).iterations),
                std::to_string(core::standardize(cfp, opts).iterations)});
  }
  t1.print(std::cout);

  std::cout << "\n2. Column-first (paper) vs row-first ordering\n\n";
  core::SinkhornOptions col_first;
  core::SinkhornOptions row_first;
  row_first.row_first = true;
  const auto a = core::standardize(cfp, col_first);
  const auto b = core::standardize(cfp, row_first);
  std::cout << "  CFP: column-first " << a.iterations << " iterations, "
            << "row-first " << b.iterations << " iterations, max |standard "
            << "form difference| = "
            << format_general(hetero::linalg::max_abs_diff(a.standard,
                                                           b.standard))
            << " (Theorem 1: unique scaling)\n";

  std::cout << "\n3. Total-support-core projection for limit-only patterns\n\n";
  // Row 1 runs only on machine 1: entries (i, 0), i > 0 are off every
  // positive diagonal, so the exact scaling does not exist.
  hetero::linalg::Matrix limit_only{{5, 0, 0, 0},
                                    {2, 3, 1, 4},
                                    {1, 2, 6, 2},
                                    {3, 1, 2, 5}};
  core::SinkhornOptions with_core;  // default: projection on
  const auto proj = core::standardize(limit_only, with_core);
  std::cout << "  with projection:    converged=" << proj.converged
            << " iterations=" << proj.iterations
            << " residual=" << format_general(proj.residual) << '\n';

  // Simulate "no projection" by running the raw iteration on the same
  // matrix with the offending entries kept (run on a copy whose pattern we
  // pretend is fine by bounding iterations).
  core::SinkhornOptions raw;
  raw.max_iterations = 2000;
  // Runs the iteration on the unprojected matrix by disabling the
  // classification shortcut: emulate by perturbing the zeros to tiny
  // positives is NOT equivalent; instead measure the raw decay directly.
  hetero::linalg::Matrix work = limit_only;
  const double rt = proj.target_row_sum, ct = proj.target_col_sum;
  std::size_t it = 0;
  double residual = 1.0;
  for (; it < raw.max_iterations && residual >= 1e-8; ++it) {
    for (std::size_t j = 0; j < work.cols(); ++j)
      work.scale_col(j, ct / work.col_sum(j));
    for (std::size_t i = 0; i < work.rows(); ++i)
      work.scale_row(i, rt / work.row_sum(i));
    residual = core::standard_form_residual(work, rt, ct);
  }
  std::cout << "  raw iteration:      converged=" << (residual < 1e-8)
            << " iterations=" << it
            << " residual=" << format_general(residual)
            << "  (O(1/k) decay of the off-diagonal-support mass)\n";
  std::cout << "\nThe projection turns an impractical harmonic decay into "
               "geometric convergence while\nprovably preserving the limit "
               "(DESIGN.md, docs/measures.md).\n";

  std::cout << "\n4. Warm start vs cold start on perturbed matrices "
               "(the annealing proposal pattern)\n\n";
  // One entry of the CFP matrix is scaled by (1 + eps); the incumbent's
  // converged scalings seed the perturbed solve.
  const auto cold_base = core::standardize(cfp);
  hetero::io::Table t4(
      {"perturbation", "cold iterations", "warm iterations"});
  for (const double eps : {1e-4, 1e-2, 1e-1, 1.0}) {
    hetero::linalg::Matrix perturbed = cfp;
    perturbed(0, 0) *= 1.0 + eps;
    core::SinkhornOptions warm;
    warm.warm_row_scale = cold_base.row_scale;
    warm.warm_col_scale = cold_base.col_scale;
    const auto cold = core::standardize(perturbed);
    const auto warm_r = core::standardize(perturbed, warm);
    t4.add_row({format_general(eps), std::to_string(cold.iterations),
                std::to_string(warm_r.iterations)});
  }
  t4.print(std::cout);
  std::cout << "\nThe smaller the proposal, the more incumbent iterations "
               "the warm seed skips — one of the\nthree levers (with the "
               "fused pass and the incremental sums) behind the annealing "
               "generator's\nspeedup.\n";
  return 0;
}
