// Reproduces paper Figure 2: MPH versus the rejected alternatives R, G and
// COV on four five-machine environments. Only MPH orders the environments
// the way intuition demands (env 1 most heterogeneous, envs 2 and 3 tied,
// env 4 in between).
#include <iostream>
#include <vector>

#include "core/measures.hpp"
#include "io/table.hpp"

int main() {
  using hetero::io::format_fixed;
  namespace core = hetero::core;

  struct Row {
    const char* label;
    std::vector<double> performances;
  };
  const std::vector<Row> environments = {
      {"1, 2, 4, 8, 16", {1, 2, 4, 8, 16}},
      {"1, 1, 1, 1, 16", {1, 1, 1, 1, 16}},
      {"1, 16, 16, 16, 16", {1, 16, 16, 16, 16}},
      {"1, 4, 4, 4, 16", {1, 4, 4, 4, 16}},
  };
  // The values printed in the paper's Figure 2, for side-by-side comparison.
  const char* paper[] = {
      "MPH=0.50 R=0.06 G=0.50 COV=0.88", "MPH=0.77 R=0.06 G=0.50 COV=1.50",
      "MPH=0.77 R=0.06 G=0.50 COV=0.46", "MPH=0.63 R=0.06 G=0.50 COV=0.90"};

  std::cout << "Figure 2 — MPH vs alternative measures (5 machines)\n\n";
  hetero::io::Table t(
      {"environment", "MPH", "R", "G", "COV", "paper reports"});
  for (std::size_t i = 0; i < environments.size(); ++i) {
    const auto& p = environments[i].performances;
    t.add_row({environments[i].label,
               format_fixed(core::adjacent_ratio_homogeneity(p), 2),
               format_fixed(core::min_max_ratio(p), 2),
               format_fixed(core::adjacent_ratio_geometric_mean(p), 2),
               format_fixed(core::value_cov(p), 2), paper[i]});
  }
  t.print(std::cout);
  std::cout << "\nOnly MPH matches intuition: R and G cannot separate any of "
               "the four;\nCOV ranks environment 3 as less heterogeneous "
               "than environment 1's even spread.\n";
  return 0;
}
