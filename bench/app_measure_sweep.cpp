// Application study (paper Section I, application d / ref [2]): generating
// ETC matrices that span the range of heterogeneities. Sweeps a grid of
// (MPH, TDH, TMA) targets and reports what the measure-targeted generator
// achieves — the capability simulation studies need to cover the whole
// heterogeneity space.
#include <iostream>

#include "etcgen/target_measures.hpp"
#include "io/table.hpp"
#include "parallel/thread_pool.hpp"

int main() {
  namespace eg = hetero::etcgen;
  using hetero::io::format_fixed;

  hetero::par::ThreadPool pool;
  const double homogeneity_levels[] = {0.9, 0.5, 0.25};
  const double tma_levels[] = {0.05, 0.3};

  std::cout << "Spanning the heterogeneity space (8 tasks x 5 machines)\n\n";
  hetero::io::Table t({"target MPH", "target TDH", "target TMA",
                       "achieved MPH", "achieved TDH", "achieved TMA",
                       "max err"});
  for (double mph : homogeneity_levels) {
    for (double tdh : homogeneity_levels) {
      for (double tma : tma_levels) {
        eg::TargetGenOptions opts;
        opts.tasks = 8;
        opts.machines = 5;
        opts.seed = static_cast<std::uint64_t>(1000 * mph + 100 * tdh +
                                               10 * tma + 1);
        opts.anneal_iterations = 9000;
        opts.restarts = 2;
        opts.tolerance = 0.02;
        opts.pool = &pool;
        const auto r = eg::generate_with_measures({mph, tdh, tma}, opts);
        t.add_row({format_fixed(mph, 2), format_fixed(tdh, 2),
                   format_fixed(tma, 2), format_fixed(r.achieved.mph, 3),
                   format_fixed(r.achieved.tdh, 3),
                   format_fixed(r.achieved.tma, 3),
                   format_fixed(r.error, 4)});
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nEvery corner of the (MPH, TDH, TMA) space is reachable "
               "within the tolerance —\nthe independence property the "
               "standard form buys (paper Section III).\n";
  return 0;
}
