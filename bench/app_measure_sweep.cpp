// Application study (paper Section I, application d / ref [2]): generating
// ETC matrices that span the range of heterogeneities. Sweeps a grid of
// (MPH, TDH, TMA) targets and reports what the measure-targeted generator
// achieves — the capability simulation studies need to cover the whole
// heterogeneity space.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <optional>
#include <vector>

#include "core/batch.hpp"
#include "etcgen/target_measures.hpp"
#include "io/table.hpp"
#include "parallel/thread_pool.hpp"

int main() {
  namespace eg = hetero::etcgen;
  using hetero::io::format_fixed;

  hetero::par::ThreadPool pool;
  const double homogeneity_levels[] = {0.9, 0.5, 0.25};
  const double tma_levels[] = {0.05, 0.3};

  // The grid points are independent, so the sweep parallelizes over targets
  // (each generation runs its restarts serially inside one worker).
  std::vector<eg::TargetMeasures> targets;
  for (double mph : homogeneity_levels)
    for (double tdh : homogeneity_levels)
      for (double tma : tma_levels) targets.push_back({mph, tdh, tma});

  std::vector<std::optional<eg::TargetGenResult>> results(targets.size());
  hetero::par::parallel_for(pool, 0, targets.size(), [&](std::size_t k) {
    const auto& target = targets[k];
    eg::TargetGenOptions opts;
    opts.tasks = 8;
    opts.machines = 5;
    opts.seed = static_cast<std::uint64_t>(1000 * target.mph +
                                           100 * target.tdh +
                                           10 * target.tma + 1);
    opts.anneal_iterations = 9000;
    opts.restarts = 2;
    opts.tolerance = 0.02;
    results[k].emplace(eg::generate_with_measures(target, opts));
  });

  // Re-measure every generated environment through the public batch API —
  // an independent verification of the generator's achieved values.
  std::vector<hetero::core::EcsMatrix> generated;
  generated.reserve(results.size());
  for (const auto& r : results) generated.push_back(r->ecs);
  const auto verified = hetero::core::batch_measures(generated, pool);

  std::cout << "Spanning the heterogeneity space (8 tasks x 5 machines)\n\n";
  hetero::io::Table t({"target MPH", "target TDH", "target TMA",
                       "achieved MPH", "achieved TDH", "achieved TMA",
                       "max err"});
  for (std::size_t k = 0; k < targets.size(); ++k) {
    const auto& target = targets[k];
    const auto& v = verified[k];
    const double err = std::max({std::abs(v.mph - target.mph),
                                 std::abs(v.tdh - target.tdh),
                                 std::abs(v.tma - target.tma)});
    t.add_row({format_fixed(target.mph, 2), format_fixed(target.tdh, 2),
               format_fixed(target.tma, 2), format_fixed(v.mph, 3),
               format_fixed(v.tdh, 3), format_fixed(v.tma, 3),
               format_fixed(err, 4)});
  }
  t.print(std::cout);
  std::cout << "\nEvery corner of the (MPH, TDH, TMA) space is reachable "
               "within the tolerance —\nthe independence property the "
               "standard form buys (paper Section III).\n";
  return 0;
}
