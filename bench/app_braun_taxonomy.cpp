// Lays the paper's measures over the classic Braun et al. [6] 12-category
// ETC taxonomy: for each {task het} x {machine het} x {consistency} class,
// the measured MPH/TDH/TMA and the classical COV statistics. Shows that
// the measures recover the taxonomy's axes — and that TMA captures
// consistency structure the COV statistics cannot see.
#include <iostream>
#include <vector>

#include "core/batch.hpp"
#include "core/statistics.hpp"
#include "etcgen/suite.hpp"
#include "io/table.hpp"
#include "parallel/thread_pool.hpp"

int main() {
  using hetero::io::format_fixed;

  hetero::etcgen::BraunSuiteOptions opts;
  opts.tasks = 64;  // smaller than the customary 512 to keep runtime short
  opts.machines = 8;
  opts.seed = 2026;
  const auto suite = hetero::etcgen::braun_suite(opts);

  // The 12 categories are independent: measure them as one parallel batch.
  std::vector<hetero::core::EcsMatrix> ecs;
  ecs.reserve(suite.size());
  for (const auto& entry : suite) ecs.push_back(entry.etc.to_ecs());
  hetero::par::ThreadPool pool;
  const auto measures = hetero::core::batch_measures(ecs, pool);

  std::cout << "Braun et al. 12-category taxonomy under this paper's "
               "measures (64 tasks x 8 machines)\n\n";
  hetero::io::Table t({"category", "MPH", "TDH", "TMA", "Vtask (col COV)",
                       "Vmach (row COV)", "consistency idx"});
  for (std::size_t k = 0; k < suite.size(); ++k) {
    const auto& entry = suite[k];
    const auto& m = measures[k];
    const auto s = hetero::core::etc_statistics(entry.etc);
    t.add_row({entry.name, format_fixed(m.mph, 2), format_fixed(m.tdh, 2),
               format_fixed(m.tma, 2),
               format_fixed(s.mean_task_heterogeneity, 2),
               format_fixed(s.mean_machine_heterogeneity, 2),
               format_fixed(s.consistency, 2)});
  }
  t.print(std::cout);
  std::cout
      << "\nReading the table: TMA rises from consistent to inconsistent "
         "within every heterogeneity class —\naffinity is exactly the "
         "structure consistency destroys, and no COV statistic sees it. The "
         "machine\naxis shows in the row COV and (mildly) MPH. Notably, the "
         "hi/lo *task* axis barely moves TDH or\nthe column COV: uniform "
         "ranges saturate every ratio statistic, so that axis is an "
         "absolute-scale\naxis only — the limitation of range-based "
         "generation that the paper's measure-targeted\ngeneration (see "
         "app_measure_sweep) removes.\n";
  return 0;
}
