// Shared --sizes=RxC[,RxC...] flag for the size-sweep perf binaries
// (perf_svd, perf_sinkhorn, perf_rsvd). The flag is consumed before
// benchmark::Initialize sees argv, and each parsed size registers one extra
// per-size benchmark row, so a sweep like
//
//   build/bench/perf_rsvd --sizes=1024x128,4096x256,16384x1024
//       --benchmark_out=sweep.json --benchmark_out_format=json
//
// emits one JSON row per (benchmark, size) pair. run_benchmarks.sh
// forwards its SIZES environment variable here.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace hetero::bench {

using SizeList = std::vector<std::pair<long, long>>;

// Parses and strips every --sizes=... argument from argv. Exits with a
// usage message on a malformed list (benchmarks have no error channel a
// caller could inspect instead).
inline SizeList parse_sizes(int* argc, char** argv) {
  SizeList out;
  const std::string prefix = "--sizes=";
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) != 0) {
      argv[kept++] = argv[i];
      continue;
    }
    std::size_t pos = prefix.size();
    while (pos <= arg.size()) {
      std::size_t comma = arg.find(',', pos);
      if (comma == std::string::npos) comma = arg.size();
      const std::string item = arg.substr(pos, comma - pos);
      const std::size_t x = item.find('x');
      long rows = 0, cols = 0;
      if (x != std::string::npos && x > 0 && x + 1 < item.size()) {
        rows = std::strtol(item.c_str(), nullptr, 10);
        cols = std::strtol(item.c_str() + x + 1, nullptr, 10);
      }
      if (rows <= 0 || cols <= 0) {
        std::fprintf(stderr, "--sizes expects RxC[,RxC...], got '%s'\n",
                     item.c_str());
        std::exit(1);
      }
      out.emplace_back(rows, cols);
      pos = comma + 1;
    }
  }
  *argc = kept;
  return out;
}

}  // namespace hetero::bench
