// Microbenchmarks of the one-sided Jacobi SVD (the TMA kernel), the
// symmetric Jacobi eigensolver used to cross-check it, and the blocked
// Gram spectrum route the large-matrix path dispatches to. Pass
// --sizes=RxC,RxC to append dense-vs-blocked rows at custom sizes.
#include <benchmark/benchmark.h>

#include <random>

#include "bench_sizes.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "linalg/rsvd.hpp"
#include "linalg/svd.hpp"

namespace {

using hetero::linalg::Matrix;

Matrix random_matrix(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix m(rows, cols);
  for (double& x : m.data()) x = dist(rng);
  return m;
}

void BM_SingularValues(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  const auto c = static_cast<std::size_t>(state.range(1));
  const Matrix m = random_matrix(r, c, 42);
  for (auto _ : state) {
    auto sv = hetero::linalg::singular_values(m);
    benchmark::DoNotOptimize(sv.data());
  }
}
BENCHMARK(BM_SingularValues)
    ->Args({12, 5})
    ->Args({17, 5})
    ->Args({32, 32})
    ->Args({64, 64})
    ->Args({128, 32})
    ->Args({512, 16});

void BM_SingularValuesReference(benchmark::State& state) {
  // The pre-optimization kernel (row-major access, column norms recomputed
  // per rotation), kept in-tree for equivalence tests — the honest
  // before/after baseline.
  const auto r = static_cast<std::size_t>(state.range(0));
  const auto c = static_cast<std::size_t>(state.range(1));
  const Matrix m = random_matrix(r, c, 42);
  for (auto _ : state) {
    auto sv = hetero::linalg::singular_values_reference(m);
    benchmark::DoNotOptimize(sv.data());
  }
}
BENCHMARK(BM_SingularValuesReference)
    ->Args({12, 5})
    ->Args({17, 5})
    ->Args({32, 32})
    ->Args({64, 64})
    ->Args({128, 32})
    ->Args({512, 16});

void BM_FullSvd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix m = random_matrix(n, n, 7);
  for (auto _ : state) {
    auto r = hetero::linalg::svd(m);
    benchmark::DoNotOptimize(r.singular_values.data());
  }
}
BENCHMARK(BM_FullSvd)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_JacobiEigen(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix m = random_matrix(n, n, 9);
  const Matrix g = hetero::linalg::gram(m);
  for (auto _ : state) {
    auto vals = hetero::linalg::symmetric_eigenvalues(g);
    benchmark::DoNotOptimize(vals.data());
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_BlockedSpectrum(benchmark::State& state) {
  // The large-matrix spectrum route: tiled Gram build, Householder
  // tridiagonalization, implicit-shift QL — the blocked twin of
  // BM_SingularValues above.
  const auto r = static_cast<std::size_t>(state.range(0));
  const auto c = static_cast<std::size_t>(state.range(1));
  const Matrix m = random_matrix(r, c, 42);
  for (auto _ : state) {
    auto sv = hetero::linalg::blocked_singular_values(m);
    benchmark::DoNotOptimize(sv.data());
  }
}
BENCHMARK(BM_BlockedSpectrum)
    ->Args({64, 64})
    ->Args({128, 32})
    ->Args({512, 16})
    ->Args({512, 128});

}  // namespace

int main(int argc, char** argv) {
  const auto sizes = hetero::bench::parse_sizes(&argc, argv);
  for (const auto& [r, c] : sizes) {
    benchmark::RegisterBenchmark("BM_SingularValues", BM_SingularValues)
        ->Args({r, c});
    benchmark::RegisterBenchmark("BM_BlockedSpectrum", BM_BlockedSpectrum)
        ->Args({r, c});
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
