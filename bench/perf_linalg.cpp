// Microbenchmarks of the direct solvers and factorizations used by the
// regression/analysis layers.
#include <benchmark/benchmark.h>

#include <random>

#include "linalg/lu.hpp"
#include "linalg/qr.hpp"

namespace {

using hetero::linalg::Matrix;

Matrix random_matrix(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix m(rows, cols);
  for (double& x : m.data()) x = dist(rng);
  return m;
}

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 1);
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    auto x = hetero::linalg::solve(a, b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_LuSolve)->Arg(8)->Arg(32)->Arg(128);

void BM_LuInverse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 2);
  for (auto _ : state) {
    auto inv = hetero::linalg::inverse(a);
    benchmark::DoNotOptimize(inv.data());
  }
}
BENCHMARK(BM_LuInverse)->Arg(8)->Arg(32)->Arg(64);

void BM_QrFactor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(2 * n, n, 3);
  for (auto _ : state) {
    auto f = hetero::linalg::qr(a);
    benchmark::DoNotOptimize(f.r.data());
  }
}
BENCHMARK(BM_QrFactor)->Arg(8)->Arg(32)->Arg(64);

void BM_LeastSquares(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(4 * n, n, 4);
  std::vector<double> b(4 * n, 0.5);
  for (auto _ : state) {
    auto x = hetero::linalg::least_squares(a, b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_LeastSquares)->Arg(4)->Arg(16)->Arg(64);

void BM_PseudoInverse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(2 * n, n, 5);
  for (auto _ : state) {
    auto p = hetero::linalg::pseudo_inverse(a);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_PseudoInverse)->Arg(8)->Arg(24);

}  // namespace
