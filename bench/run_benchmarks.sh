#!/usr/bin/env bash
# Runs every perf_* benchmark binary and records one JSON file per suite
# under bench_results/, named BENCH_<tag>_<suite>.json. The tag defaults to
# the current git short SHA so runs from different commits can sit side by
# side; pass a tag explicitly as the first argument (e.g. pr1) when
# labelling a milestone.
#
# Usage, from the repository root (after cmake --build build):
#   bench/run_benchmarks.sh [tag]
#
# Set FILTER to a google-benchmark regex to restrict what runs, e.g.
#   FILTER='BM_MinMin|BM_Batch' bench/run_benchmarks.sh pr2
# runs only the scheduler suites touched by a change, and
#   FILTER='BM_Service' bench/run_benchmarks.sh pr5
# runs only the service-layer closed-loop suites (perf_service: warm/cold
# characterize at 1/4/16 clients, schedule, cache hit-rate sweep).
#
# Set SIZES to an RxC list to add per-size rows to the size-sweep suites
# (perf_svd, perf_sinkhorn, perf_rsvd), e.g.
#   SIZES=4096x256,16384x1024 FILTER=BM_BlockedCharacterize \
#       bench/run_benchmarks.sh pr6
# runs the large-matrix frontier sweep only.
#
# Set HETERO_NATIVE=1 to configure and build a separate build-native tree
# with -DHETERO_NATIVE=ON (-march=native) and benchmark that instead — for
# measuring what the host ISA buys on top of the dispatched kernels.
#
# Set CLIENTS to additionally run the perf_service TCP harness (the epoll
# event loop driven by the non-blocking loadgen over real sockets) at that
# many concurrent connections, recording BENCH_<tag>_service_tcp.json;
# WORKERS (default 1) sets the event-loop thread count and REQUESTS
# (default 100) the per-client request count, e.g.
#   CLIENTS=1000 WORKERS=$(nproc) bench/run_benchmarks.sh pr7
#
# Set MATRIX to a comma list of WxT (event-loop workers x compute threads)
# pairs to sweep the harness across a worker/thread grid, recording one
# JSON array in BENCH_<tag>_service_matrix.json, e.g.
#   CLIENTS=200 MATRIX=1x1,2x2,4x4 bench/run_benchmarks.sh pr9
#
# Set STREAM=1 (with CLIENTS) to run the delta-stream workload instead of
# characterize: every connection subscribes once and then streams `update`
# requests (BENCH_<tag>_stream_tcp.json). STREAM_SIZE (default 128x16) and
# STREAM_BATCH (default 1) shape the session matrix and the cells revised
# per update.
#
# Set OPEN_RPS to a comma list of offered loads to additionally run the
# harness open loop at each rate (latency-under-offered-load study),
# recording one JSON array in BENCH_<tag>_service_openloop.json.
#
# Set SIM=1 to run only the simulator suite (perf_sim): full discrete-event
# runs over the shipped scenarios/ files per scheduler, recorded as
# BENCH_<tag>_sim.json. SCENARIO narrows the sweep to specific files
# (comma list of paths), e.g.
#   SIM=1 SCENARIO=scenarios/starvation.sim bench/run_benchmarks.sh pr10
#
# Every recorded file is stamped with host metadata (cores, CPU, compiler,
# HETERO_SIMD backend) via tools/bench_meta.py.
set -euo pipefail

REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${BUILD_DIR:-$REPO_ROOT/build}

# Every result file is piped through bench_meta.py; if python3 is missing
# the stamping step would die mid-loop leaving unstamped (or, under FILTER,
# wrongly deleted) BENCH JSON behind. Refuse up front instead.
if ! command -v python3 >/dev/null 2>&1; then
  echo "run_benchmarks.sh: python3 not found; refusing to record unstamped" \
       "BENCH JSON (tools/bench_meta.py cannot run)" >&2
  exit 1
fi
if ! python3 -c 'import json' 2>/dev/null || \
   [ ! -r "$REPO_ROOT/tools/bench_meta.py" ]; then
  echo "run_benchmarks.sh: tools/bench_meta.py is not runnable with this" \
       "python3; refusing to record unstamped BENCH JSON" >&2
  exit 1
fi

if [ "${HETERO_NATIVE:-0}" = "1" ]; then
  BUILD_DIR=$REPO_ROOT/build-native
  echo "== HETERO_NATIVE=1: configuring and building $BUILD_DIR"
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DHETERO_NATIVE=ON \
        -DHETERO_BUILD_TESTS=OFF -DHETERO_BUILD_EXAMPLES=OFF \
        -DHETERO_BUILD_TOOLS=OFF
  cmake --build "$BUILD_DIR" -j "$(nproc)"
fi

TAG=${1:-$(git -C "$REPO_ROOT" rev-parse --short HEAD)}
OUT_DIR=${OUT_DIR:-$REPO_ROOT/bench_results}
MIN_TIME=${MIN_TIME:-0.3}
FILTER=${FILTER:-}
SIZES=${SIZES:-}
mkdir -p "$OUT_DIR"

# SIM=1: only the simulator suite. perf_sim defaults to the four shipped
# scenarios; SCENARIO (comma list of .sim paths) replaces that sweep.
if [ "${SIM:-0}" = "1" ]; then
  bench="$BUILD_DIR/bench/perf_sim"
  if [ ! -x "$bench" ]; then
    echo "run_benchmarks.sh: $bench not built — build with" \
         "cmake -B build -S . && cmake --build build -j" >&2
    exit 1
  fi
  scenario_args=
  for s in $(echo "${SCENARIO:-}" | tr ',' ' '); do
    scenario_args="$scenario_args --scenario=$s"
  done
  out="$OUT_DIR/BENCH_${TAG}_sim.json"
  echo "== perf_sim${SCENARIO:+ (${SCENARIO})} -> $out"
  # shellcheck disable=SC2086  # scenario_args is a flag list by design
  "$bench" $scenario_args \
           --benchmark_out="$out" --benchmark_out_format=json \
           --benchmark_min_time="$MIN_TIME" \
           ${FILTER:+--benchmark_filter="$FILTER"}
  python3 "$REPO_ROOT/tools/bench_meta.py" "$out"
  exit 0
fi

found=0
for bench in "$BUILD_DIR"/bench/perf_*; do
  [ -x "$bench" ] || continue
  found=1
  name=$(basename "$bench")
  out="$OUT_DIR/BENCH_${TAG}_${name#perf_}.json"
  echo "== $name -> $out"
  # Only the size-sweep binaries understand --sizes; the others would
  # reject it as an unknown flag.
  sizes_arg=
  case "$name" in
    perf_svd|perf_sinkhorn|perf_rsvd) [ -n "$SIZES" ] && sizes_arg="--sizes=$SIZES" ;;
  esac
  "$bench" ${sizes_arg:+"$sizes_arg"} \
           --benchmark_out="$out" --benchmark_out_format=json \
           --benchmark_min_time="$MIN_TIME" \
           ${FILTER:+--benchmark_filter="$FILTER"}
  # When FILTER matches nothing in this binary google-benchmark still exits
  # zero but leaves the output file empty — that means "not this suite",
  # not a failure; drop the empty file instead of recording it.
  if [ -n "$FILTER" ] && ! python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$out" 2>/dev/null; then
    echo "   (no benchmarks matching FILTER in $name; skipped)"
    rm -f "$out"
    continue
  fi
  python3 "$REPO_ROOT/tools/bench_meta.py" "$out"
done

if [ "$found" -eq 0 ]; then
  echo "no perf_* binaries under $BUILD_DIR/bench — build with" \
       "cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

# TCP harness passes: real sockets, N concurrent clients against the epoll
# event loop. perf_service exits non-zero on malformed/dropped responses,
# which fails this script (set -e) — a bad number is never recorded.
if [ -n "${CLIENTS:-}" ]; then
  stream_args=
  suffix=service_tcp
  if [ "${STREAM:-0}" = "1" ]; then
    stream_args="--stream=1 --stream-size=${STREAM_SIZE:-128x16} --stream-batch=${STREAM_BATCH:-1}"
    suffix=stream_tcp
  fi

  run_harness() {
    # run_harness WORKERS THREADS OUT; appends the report line to OUT.
    "$BUILD_DIR/bench/perf_service" \
        --clients="$CLIENTS" \
        --workers="$1" \
        --threads="$2" \
        --requests="${REQUESTS:-100}" \
        ${stream_args:+$stream_args} \
        ${3:+--open-rps="$3"}
  }

  if [ -n "${MATRIX:-}" ]; then
    # WORKERS x THREADS grid: one harness run per WxT pair, all reports in
    # one JSON array tagged with their grid coordinates.
    out="$OUT_DIR/BENCH_${TAG}_service_matrix.json"
    echo "== perf_service $suffix matrix ($MATRIX) -> $out"
    {
      echo '['
      first=1
      for combo in $(echo "$MATRIX" | tr ',' ' '); do
        w=${combo%x*}
        t=${combo#*x}
        [ "$first" -eq 1 ] || echo ','
        first=0
        report=$(run_harness "$w" "$t" "")
        printf '{"workers":%s,"threads":%s,"report":%s}' "$w" "$t" "$report"
      done
      echo
      echo ']'
    } > "$out"
    python3 "$REPO_ROOT/tools/bench_meta.py" "$out"
    cat "$out"
  else
    out="$OUT_DIR/BENCH_${TAG}_${suffix}.json"
    echo "== perf_service --clients=$CLIENTS $stream_args -> $out"
    run_harness "${WORKERS:-1}" "${THREADS:-0}" "" > "$out"
    python3 "$REPO_ROOT/tools/bench_meta.py" "$out"
    cat "$out"
  fi

  if [ -n "${OPEN_RPS:-}" ]; then
    # Open-loop latency-under-offered-load study: fixed arrival schedule at
    # each offered rate, one report per rate.
    out="$OUT_DIR/BENCH_${TAG}_service_openloop.json"
    echo "== perf_service open-loop sweep ($OPEN_RPS rps) -> $out"
    {
      echo '['
      first=1
      for rps in $(echo "$OPEN_RPS" | tr ',' ' '); do
        [ "$first" -eq 1 ] || echo ','
        first=0
        report=$(run_harness "${WORKERS:-1}" "${THREADS:-0}" "$rps")
        printf '{"offered_rps":%s,"report":%s}' "$rps" "$report"
      done
      echo
      echo ']'
    } > "$out"
    python3 "$REPO_ROOT/tools/bench_meta.py" "$out"
    cat "$out"
  fi
fi
