// Simulator performance: full discrete-event runs over the shipped
// scenarios, per scheduler. The interesting spread is cold O(U^2 M)
// batch replanning (min_min / max_min) against the incremental
// BatchEngine adapters (batch_*) and immediate-mode greedy_mct — same
// traces (sim_equiv), different planning cost.
//
// Custom main: --scenario=<path> replaces the default scenario-suite
// sweep (used by run_benchmarks.sh SCENARIO= passthrough). Scenario
// files default to the repo's scenarios/ directory, overridable with
// HETERO_SCENARIO_DIR in the environment.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/scenario.hpp"
#include "sim/scheduler.hpp"

namespace {

namespace sim = hetero::sim;

std::string stem_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return name;
}

// Scenarios are parsed once per registered benchmark and shared across
// iterations; each iteration constructs a fresh one-shot Engine.
std::vector<sim::Scenario>& scenario_pool() {
  static std::vector<sim::Scenario> pool;
  return pool;
}

void run_sim(benchmark::State& state, std::size_t scenario_index,
             const std::string& token, bool controllers) {
  const sim::Scenario& scenario = scenario_pool()[scenario_index];
  sim::SimOptions options;
  options.power_gating = controllers;
  options.migration = controllers;
  std::size_t events = 0;
  double energy = 0.0;
  for (auto _ : state) {
    const auto scheduler = sim::make_scheduler(token);
    sim::Engine engine(scenario, options);
    const sim::SimReport report = engine.run(*scheduler);
    events = report.events;
    energy = report.total_energy_j;
    benchmark::DoNotOptimize(report.trace_hash);
  }
  state.counters["events"] = static_cast<double>(events);
  state.counters["energy_j"] = energy;
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void register_scenario(const std::string& path) {
  scenario_pool().push_back(sim::load_scenario(path));
  const std::size_t index = scenario_pool().size() - 1;
  const std::string stem = stem_of(path);
  for (const std::string_view token : sim::scheduler_tokens()) {
    benchmark::RegisterBenchmark(
        ("BM_Sim/" + stem + "/" + std::string(token)).c_str(),
        [index, token = std::string(token)](benchmark::State& state) {
          run_sim(state, index, token, /*controllers=*/false);
        })
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark(
      ("BM_Sim/" + stem + "/batch_min_min+controllers").c_str(),
      [index](benchmark::State& state) {
        run_sim(state, index, "batch_min_min", /*controllers=*/true);
      })
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scenario=", 11) == 0) {
      paths.emplace_back(argv[i] + 11);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (paths.empty()) {
    const char* env = std::getenv("HETERO_SCENARIO_DIR");
    const std::string dir = env ? env : HETERO_SCENARIO_DIR;
    for (const char* stem : {"burst_cycle", "starvation", "memory_overload",
                             "heterogeneous_mix"}) {
      paths.push_back(dir + "/" + stem + ".sim");
    }
  }
  try {
    for (const std::string& path : paths) register_scenario(path);
  } catch (const std::exception& e) {
    std::cerr << "perf_sim: " << e.what() << '\n';
    return 2;
  }

  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
