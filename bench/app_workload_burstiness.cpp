// Application study: does heterogeneity interact with workload burstiness?
// Crosses two environments (near-homogeneous vs heterogeneous/affine) with
// three arrival processes (steady, diurnal, bursty) and reports mean flow
// time for availability-blind MET vs completion-time MCT vs batch Min-Min.
// Bursts are where mapping quality matters most: backlog forms and the
// gap between policies widens.
#include <iostream>

#include "core/measures.hpp"
#include "etcgen/target_measures.hpp"
#include "io/table.hpp"
#include "parallel/thread_pool.hpp"
#include "sched/workload.hpp"

int main() {
  using hetero::io::format_fixed;
  namespace eg = hetero::etcgen;
  namespace sc = hetero::sched;

  hetero::par::ThreadPool pool;
  const auto make_env = [&](double mph, double tma, std::uint64_t seed) {
    eg::TargetGenOptions opts;
    opts.tasks = 10;
    opts.machines = 5;
    opts.seed = seed;
    opts.anneal_iterations = 9000;
    opts.restarts = 2;
    opts.tolerance = 0.02;
    opts.scale = 0.01;  // runtimes in the hundreds of seconds
    opts.pool = &pool;
    return eg::generate_with_measures({mph, 0.8, tma}, opts).ecs.to_etc();
  };

  struct Env {
    const char* name;
    hetero::core::EtcMatrix etc;
  };
  const Env envs[] = {{"homogeneous (MPH .95, TMA .03)",
                       make_env(0.95, 0.03, 11)},
                      {"heterogeneous (MPH .45, TMA .25)",
                       make_env(0.45, 0.25, 22)}};

  std::cout << "Heterogeneity x burstiness (200 arrivals, mean flow time in "
               "seconds)\n\n";
  hetero::io::Table t({"environment", "workload", "MET", "MCT",
                       "batch Min-Min"});
  eg::Rng rng = eg::make_rng(777);
  for (const auto& env : envs) {
    // Load the machines at ~60% of capacity.
    double mean_best = 0.0;
    for (std::size_t i = 0; i < env.etc.task_count(); ++i) {
      double best = env.etc(i, 0);
      for (std::size_t j = 1; j < env.etc.machine_count(); ++j)
        best = std::min(best, env.etc(i, j));
      mean_best += best;
    }
    mean_best /= static_cast<double>(env.etc.task_count());
    const double rate =
        0.6 * static_cast<double>(env.etc.machine_count()) / mean_best;

    for (const auto& [label, shape] :
         {std::pair{"steady", sc::RateShape::constant},
          std::pair{"diurnal", sc::RateShape::diurnal},
          std::pair{"bursty", sc::RateShape::bursty}}) {
      sc::WorkloadOptions w;
      w.base_rate = rate;
      w.shape = shape;
      w.diurnal_amplitude = 0.8;
      w.diurnal_period = 40.0 * mean_best;
      w.burst_factor = 6.0;
      w.mean_normal_duration = 30.0 * mean_best;
      w.mean_burst_duration = 5.0 * mean_best;
      const auto arrivals = sc::generate_workload(env.etc, w, 200, rng);

      t.add_row(
          {env.name, label,
           format_fixed(sc::simulate_immediate(env.etc, arrivals,
                                               sc::ImmediateMode::met)
                            .mean_flow_time,
                        0),
           format_fixed(sc::simulate_immediate(env.etc, arrivals,
                                               sc::ImmediateMode::mct)
                            .mean_flow_time,
                        0),
           format_fixed(sc::simulate_batch_min_min(env.etc, arrivals)
                            .mean_flow_time,
                        0)});
    }
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: bursty and diurnal peaks build backlog, "
               "amplifying the penalty of\navailability-blind MET — most "
               "severely in the heterogeneous environment.\n";
  return 0;
}
