// Reproduces paper Figure 1: an example ECS matrix illustrating how machine
// performance (the column sum, eq. 2) is calculated. The printed entries of
// the original figure are lost to OCR; this instance preserves the one
// stated property — machine 1's performance is 17.
#include <iostream>

#include "core/etc_matrix.hpp"
#include "core/performance.hpp"
#include "io/table.hpp"

int main() {
  using hetero::core::EcsMatrix;
  using hetero::linalg::Matrix;

  const EcsMatrix ecs(Matrix{{2, 4, 6}, {3, 5, 7}, {4, 6, 8}, {8, 2, 1}});

  std::cout << "Figure 1 — machine performance as ECS column sums\n\n";
  hetero::io::print_ecs(std::cout, ecs, 0);

  const auto mp = hetero::core::machine_performances(ecs);
  hetero::io::Table t({"machine", "MP_j (eq. 2)"});
  for (std::size_t j = 0; j < mp.size(); ++j)
    t.add_row({ecs.machine_names()[j], hetero::io::format_fixed(mp[j], 0)});
  std::cout << '\n';
  t.print(std::cout);
  std::cout << "\npaper: the performance of machine 1 is 17 — measured "
            << hetero::io::format_fixed(mp[0], 0) << '\n';
  return 0;
}
