// Microbenchmarks of the mapping heuristics across batch sizes. The batch
// heuristics (Min-Min, Max-Min, Sufferage) run on the incremental
// BatchEngine — O(T * M + affected rescans) per round versus the retained
// O(T^2 * M) references benchmarked alongside (the *Reference variants).
// The search mappers dominate runtime; the GA also runs across a pool with
// bit-identical results (BM_GaMapperParallel).
#include <benchmark/benchmark.h>

#include "etcgen/range_based.hpp"
#include "parallel/thread_pool.hpp"
#include "sched/evolutionary.hpp"
#include "sched/heuristics.hpp"

namespace {

using hetero::core::EtcMatrix;
namespace sc = hetero::sched;

EtcMatrix env(std::size_t tasks, std::size_t machines) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(99);
  hetero::etcgen::RangeBasedOptions opts;
  opts.tasks = tasks;
  opts.machines = machines;
  return hetero::etcgen::generate_range_based(opts, rng);
}

// Shared body: every batch heuristic benchmark maps one task instance per
// type of a T x M environment, so fast/reference rows line up exactly.
template <sc::Assignment (*Map)(const EtcMatrix&, const sc::TaskList&)>
void BM_Batch(benchmark::State& state) {
  const auto etc = env(static_cast<std::size_t>(state.range(0)),
                       static_cast<std::size_t>(state.range(1)));
  const auto tasks = sc::one_of_each(etc);
  for (auto _ : state) benchmark::DoNotOptimize(Map(etc, tasks).data());
}

void BM_MinMin(benchmark::State& s) { BM_Batch<sc::map_min_min>(s); }
void BM_MinMinReference(benchmark::State& s) {
  BM_Batch<sc::map_min_min_reference>(s);
}
void BM_MaxMin(benchmark::State& s) { BM_Batch<sc::map_max_min>(s); }
void BM_MaxMinReference(benchmark::State& s) {
  BM_Batch<sc::map_max_min_reference>(s);
}
void BM_Sufferage(benchmark::State& s) { BM_Batch<sc::map_sufferage>(s); }
void BM_SufferageReference(benchmark::State& s) {
  BM_Batch<sc::map_sufferage_reference>(s);
}

BENCHMARK(BM_MinMin)->Args({64, 8})->Args({256, 8})->Args({512, 16});
BENCHMARK(BM_MinMinReference)->Args({64, 8})->Args({256, 8})->Args({512, 16});
BENCHMARK(BM_MaxMin)->Args({512, 16});
BENCHMARK(BM_MaxMinReference)->Args({512, 16});
BENCHMARK(BM_Sufferage)->Args({64, 8})->Args({256, 8})->Args({512, 16});
BENCHMARK(BM_SufferageReference)
    ->Args({64, 8})
    ->Args({256, 8})
    ->Args({512, 16});

void BM_Mct(benchmark::State& state) {
  const auto etc = env(static_cast<std::size_t>(state.range(0)), 8);
  const auto tasks = sc::one_of_each(etc);
  for (auto _ : state)
    benchmark::DoNotOptimize(sc::map_mct(etc, tasks).data());
}
BENCHMARK(BM_Mct)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_SaMapper(benchmark::State& state) {
  const auto etc = env(64, 8);
  const auto tasks = sc::one_of_each(etc);
  sc::SaMapperOptions opts;
  opts.iterations = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sc::map_simulated_annealing(etc, tasks, opts).data());
}
BENCHMARK(BM_SaMapper)->Arg(1000)->Arg(5000);

void BM_GaMapper(benchmark::State& state) {
  const auto etc = env(64, 8);
  const auto tasks = sc::one_of_each(etc);
  sc::GaMapperOptions opts;
  opts.population = 40;
  opts.generations = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(sc::map_genetic(etc, tasks, opts).data());
}
BENCHMARK(BM_GaMapper)->Arg(10)->Arg(40);

void BM_GaMapperParallel(benchmark::State& state) {
  const auto etc = env(64, 8);
  const auto tasks = sc::one_of_each(etc);
  hetero::par::ThreadPool pool;
  sc::GaMapperOptions opts;
  opts.population = 40;
  opts.generations = static_cast<std::size_t>(state.range(0));
  opts.pool = &pool;
  for (auto _ : state)
    benchmark::DoNotOptimize(sc::map_genetic(etc, tasks, opts).data());
}
BENCHMARK(BM_GaMapperParallel)->Arg(10)->Arg(40);

}  // namespace
