// Microbenchmarks of the mapping heuristics across batch sizes: the list
// heuristics are O(T*M) or O(T^2*M); the search mappers dominate runtime.
#include <benchmark/benchmark.h>

#include "etcgen/range_based.hpp"
#include "sched/evolutionary.hpp"
#include "sched/heuristics.hpp"

namespace {

using hetero::core::EtcMatrix;
namespace sc = hetero::sched;

EtcMatrix env(std::size_t tasks, std::size_t machines) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(99);
  hetero::etcgen::RangeBasedOptions opts;
  opts.tasks = tasks;
  opts.machines = machines;
  return hetero::etcgen::generate_range_based(opts, rng);
}

void BM_MinMin(benchmark::State& state) {
  const auto etc = env(static_cast<std::size_t>(state.range(0)), 8);
  const auto tasks = sc::one_of_each(etc);
  for (auto _ : state)
    benchmark::DoNotOptimize(sc::map_min_min(etc, tasks).data());
}
BENCHMARK(BM_MinMin)->Arg(16)->Arg(64)->Arg(256);

void BM_Sufferage(benchmark::State& state) {
  const auto etc = env(static_cast<std::size_t>(state.range(0)), 8);
  const auto tasks = sc::one_of_each(etc);
  for (auto _ : state)
    benchmark::DoNotOptimize(sc::map_sufferage(etc, tasks).data());
}
BENCHMARK(BM_Sufferage)->Arg(16)->Arg(64)->Arg(256);

void BM_Mct(benchmark::State& state) {
  const auto etc = env(static_cast<std::size_t>(state.range(0)), 8);
  const auto tasks = sc::one_of_each(etc);
  for (auto _ : state)
    benchmark::DoNotOptimize(sc::map_mct(etc, tasks).data());
}
BENCHMARK(BM_Mct)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_SaMapper(benchmark::State& state) {
  const auto etc = env(64, 8);
  const auto tasks = sc::one_of_each(etc);
  sc::SaMapperOptions opts;
  opts.iterations = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sc::map_simulated_annealing(etc, tasks, opts).data());
}
BENCHMARK(BM_SaMapper)->Arg(1000)->Arg(5000);

void BM_GaMapper(benchmark::State& state) {
  const auto etc = env(64, 8);
  const auto tasks = sc::one_of_each(etc);
  sc::GaMapperOptions opts;
  opts.population = 40;
  opts.generations = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(sc::map_genetic(etc, tasks, opts).data());
}
BENCHMARK(BM_GaMapper)->Arg(10)->Arg(40);

}  // namespace
