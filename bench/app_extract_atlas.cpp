// Extension of Figure 8: instead of two hand-picked 2x2 extracts, search
// *all* 2x2 sub-environments of both SPEC matrices for the measure
// extremes. Shows that tiny sub-environments of modestly heterogeneous
// systems span almost the entire measure ranges — the paper's point,
// automated.
#include <iostream>
#include <sstream>

#include "core/extracts.hpp"
#include "io/table.hpp"
#include "spec/spec_data.hpp"

namespace {

std::string name_extract(const hetero::core::Extract& e,
                         const hetero::core::EcsMatrix& ecs) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < e.tasks.size(); ++i)
    os << (i ? "," : "") << ecs.task_names()[e.tasks[i]];
  os << "}x{";
  for (std::size_t j = 0; j < e.machines.size(); ++j)
    os << (j ? "," : "") << ecs.machine_names()[e.machines[j]];
  os << '}';
  return os.str();
}

void atlas_for(const char* label, const hetero::core::EcsMatrix& ecs) {
  using hetero::io::format_fixed;
  const auto atlas = hetero::core::extract_atlas(ecs);
  std::cout << label << " — " << atlas.scored << " extracts scored ("
            << (atlas.exhaustive ? "exhaustive" : "sampled") << ")\n";
  hetero::io::Table t({"extreme", "value", "extract"});
  const auto row = [&](const char* what, double value,
                       const hetero::core::Extract& e) {
    t.add_row({what, format_fixed(value, 2), name_extract(e, ecs)});
  };
  row("min MPH", atlas.min_mph.measures.mph, atlas.min_mph);
  row("max MPH", atlas.max_mph.measures.mph, atlas.max_mph);
  row("min TDH", atlas.min_tdh.measures.tdh, atlas.min_tdh);
  row("max TDH", atlas.max_tdh.measures.tdh, atlas.max_tdh);
  row("min TMA", atlas.min_tma.measures.tma, atlas.min_tma);
  row("max TMA", atlas.max_tma.measures.tma, atlas.max_tma);
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "Figure 8 extended — extreme 2x2 extracts of the SPEC "
               "environments\n\n";
  atlas_for("SPEC CINT2006Rate (12x5)",
            hetero::spec::spec_cint2006rate().to_ecs());
  atlas_for("SPEC CFP2006Rate (17x5)",
            hetero::spec::spec_cfp2006rate().to_ecs());
  std::cout << "The paper's hand-picked Fig. 8 extracts (TMA 0.05 and 0.60) "
               "sit inside these automatically\ndiscovered envelopes: small "
               "sub-environments span nearly the full measure ranges.\n";
  return 0;
}
