// Microbenchmarks of the SIMD kernel layer itself: each hot kernel runs
// against every compiled-in backend (scalar twin vs dispatched AVX2/NEON),
// so a regression in the vector paths shows up as a ratio change without
// needing two builds. Sizes bracket the paper's 512-task x 16-machine shape:
// 16 is a scheduler row, 512 a Sinkhorn row/column pass worth of elements.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <random>
#include <vector>

#include "simd/simd.hpp"

namespace {

using hetero::simd::Backend;
using hetero::simd::backend_name;
using hetero::simd::Kernels;
using hetero::simd::kernels_for;

std::vector<double> random_vector(std::size_t n, unsigned seed, double lo = 0.5,
                                  double hi = 2.0) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  std::vector<double> v(n);
  for (double& x : v) x = dist(rng);
  return v;
}

// Registers one benchmark per available backend so `perf_simd` output reads
// as BM_Sum/scalar/512 next to BM_Sum/avx2/512.
template <typename F>
void for_each_backend(const char* name, F body) {
  for (Backend b : {Backend::scalar, Backend::avx2, Backend::neon}) {
    const Kernels* k = kernels_for(b);
    if (k == nullptr) continue;
    benchmark::RegisterBenchmark(
        (std::string(name) + "/" + backend_name(b)).c_str(),
        [k, body](benchmark::State& state) { body(state, *k); })
        ->Arg(16)
        ->Arg(512)
        ->Arg(8192);
  }
}

void register_all() {
  for_each_backend("BM_Sum", [](benchmark::State& state, const Kernels& k) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto x = random_vector(n, 1);
    for (auto _ : state) {
      double s = k.sum(x.data(), n);
      benchmark::DoNotOptimize(s);
    }
  });

  for_each_backend("BM_Dot", [](benchmark::State& state, const Kernels& k) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto a = random_vector(n, 2);
    const auto b = random_vector(n, 3);
    for (auto _ : state) {
      double s = k.dot(a.data(), b.data(), n);
      benchmark::DoNotOptimize(s);
    }
  });

  // The fused Sinkhorn row pass: scale a row in place and accumulate it into
  // the running column sums, returning the new row sum.
  for_each_backend("BM_ScaleAccum",
                   [](benchmark::State& state, const Kernels& k) {
                     const auto n = static_cast<std::size_t>(state.range(0));
                     auto row = random_vector(n, 4);
                     std::vector<double> acc(n, 0.0);
                     for (auto _ : state) {
                       double s = k.scale_accum(row.data(), n, 1.0, acc.data());
                       benchmark::DoNotOptimize(s);
                       benchmark::DoNotOptimize(acc.data());
                     }
                   });

  for_each_backend("BM_RotatePair",
                   [](benchmark::State& state, const Kernels& k) {
                     const auto n = static_cast<std::size_t>(state.range(0));
                     auto x = random_vector(n, 5, -1.0, 1.0);
                     auto y = random_vector(n, 6, -1.0, 1.0);
                     for (auto _ : state) {
                       k.rotate_pair(x.data(), y.data(), n, 0.8, 0.6);
                       benchmark::DoNotOptimize(x.data());
                       benchmark::DoNotOptimize(y.data());
                     }
                   });

  for_each_backend("BM_ReciprocalOrZero",
                   [](benchmark::State& state, const Kernels& k) {
                     const auto n = static_cast<std::size_t>(state.range(0));
                     const auto x = random_vector(n, 7);
                     std::vector<double> out(n);
                     for (auto _ : state) {
                       k.reciprocal_or_zero(x.data(), out.data(), n);
                       benchmark::DoNotOptimize(out.data());
                     }
                   });

  // The MCT/Min-Min inner loop: fused completion-time scan for the best and
  // second-best machine of one task row.
  for_each_backend("BM_BestSecondScan",
                   [](benchmark::State& state, const Kernels& k) {
                     const auto n = static_cast<std::size_t>(state.range(0));
                     const auto etc = random_vector(n, 8, 1.0, 16.0);
                     const auto ready = random_vector(n, 9, 0.0, 64.0);
                     for (auto _ : state) {
                       double best = 0.0;
                       double second = 0.0;
                       std::size_t at = 0;
                       k.best_second_scan(etc.data(), ready.data(), n, &best,
                                          &second, &at);
                       benchmark::DoNotOptimize(best);
                       benchmark::DoNotOptimize(second);
                       benchmark::DoNotOptimize(at);
                     }
                   });

  for_each_backend("BM_ArgminFirst",
                   [](benchmark::State& state, const Kernels& k) {
                     const auto n = static_cast<std::size_t>(state.range(0));
                     const auto x = random_vector(n, 10);
                     for (auto _ : state) {
                       double m = 0.0;
                       std::size_t at = 0;
                       k.argmin_first(x.data(), n, &m, &at);
                       benchmark::DoNotOptimize(m);
                       benchmark::DoNotOptimize(at);
                     }
                   });
}

const bool registered = (register_all(), true);

}  // namespace
