// Reproduces paper Figure 8: two 2x2 ETC matrices extracted from the SPEC
// data showing that small sub-environments of the same machines can sit at
// opposite extremes of the measures:
//   (a) {omnetpp, cactusADM} x {m4, m5}: TDH=0.16 MPH=0.31 TMA=0.05
//   (b) {cactusADM, soplex} x {m1, m4}:  TMA=0.60 (TDH/MPH digits lost)
#include <iostream>

#include "core/measures.hpp"
#include "io/table.hpp"
#include "spec/spec_data.hpp"

namespace {

void show(const char* title, const hetero::core::EtcMatrix& etc,
          const char* paper_row) {
  std::cout << title << "\n";
  hetero::io::print_etc(std::cout, etc, 1);
  const auto m = hetero::core::measure_set(etc.to_ecs());
  std::cout << "measured: TDH=" << hetero::io::format_fixed(m.tdh, 2)
            << " MPH=" << hetero::io::format_fixed(m.mph, 2)
            << " TMA=" << hetero::io::format_fixed(m.tma, 2) << '\n'
            << "paper:    " << paper_row << "\n\n";
}

}  // namespace

int main() {
  std::cout << "Figure 8 — 2x2 ETC extracts from the SPEC matrices\n\n";
  show("(a) low affinity, heterogeneous tasks", hetero::spec::spec_fig8a(),
       "TDH=0.16 MPH=0.31 TMA=0.05");
  show("(b) high affinity", hetero::spec::spec_fig8b(),
       "TMA=0.60 (TDH/MPH digits lost to OCR)");

  const auto a = hetero::core::measure_set(hetero::spec::spec_fig8a().to_ecs());
  const auto b = hetero::core::measure_set(hetero::spec::spec_fig8b().to_ecs());
  std::cout << "performance ratios vary widely per task in (b) but not (a): "
            << "TMA(b)=" << hetero::io::format_fixed(b.tma, 2)
            << " >> TMA(a)=" << hetero::io::format_fixed(a.tma, 2) << '\n';
  return 0;
}
