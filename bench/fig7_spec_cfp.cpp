// Reproduces paper Figure 7: the SPEC CFP2006Rate ETC matrix (17 task types
// x 5 machines) and its measures TDH = 0.91, MPH = 0.83, TMA ~ 0.11 (the
// paper's TMA digits are partially lost to OCR; the prose requires CFP
// affinity to exceed CINT's 0.07). Paper iteration count: 7. The embedded
// runtimes are calibrated synthetic data (DESIGN.md §4).
#include <iostream>

#include "core/measures.hpp"
#include "io/table.hpp"
#include "spec/spec_data.hpp"

int main() {
  using hetero::io::format_fixed;

  const auto& etc = hetero::spec::spec_cfp2006rate();
  std::cout << "Figure 7 — SPEC CFP2006Rate peak runtimes (s)\n\n";
  hetero::io::print_etc(std::cout, etc, 1);

  const auto ecs = etc.to_ecs();
  const auto detail = hetero::core::tma_detailed(ecs);
  const auto m = hetero::core::measure_set(ecs);

  hetero::io::Table t({"measure", "measured", "paper"});
  t.add_row({"TDH", format_fixed(m.tdh, 2), "0.91"});
  t.add_row({"MPH", format_fixed(m.mph, 2), "0.83"});
  t.add_row({"TMA", format_fixed(m.tma, 2), "0.1? (digits lost; > CINT)"});
  std::cout << '\n';
  t.print(std::cout);
  std::cout << "\nSinkhorn iterations to 1e-8: "
            << detail.standard_form.iterations << " (paper: 7)\n";

  const auto cint =
      hetero::core::measure_set(hetero::spec::spec_cint2006rate().to_ecs());
  std::cout << "CFP affinity exceeds CINT affinity: "
            << format_fixed(m.tma, 3) << " > " << format_fixed(cint.tma, 3)
            << " — " << (m.tma > cint.tma ? "holds" : "VIOLATED") << '\n';
  return 0;
}
