// Microbenchmarks of the Sinkhorn standardization (eq. 9) across matrix
// sizes and zero-pattern classes, plus the pattern classifier itself and
// the tiled pool-parallel sweep of the large-matrix path. Pass
// --sizes=RxC,RxC to append fused-vs-tiled rows at custom sizes.
#include <benchmark/benchmark.h>

#include <random>

#include "bench_sizes.hpp"
#include "core/standard_form.hpp"
#include "graph/structure.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using hetero::linalg::Matrix;

Matrix random_positive(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::lognormal_distribution<double> dist(0.0, 1.0);
  Matrix m(rows, cols);
  for (double& x : m.data()) x = dist(rng);
  return m;
}

void BM_SinkhornPositive(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const Matrix input = random_positive(t, m, 42);
  for (auto _ : state) {
    auto r = hetero::core::standardize(input);
    benchmark::DoNotOptimize(r.residual);
  }
  state.counters["iterations"] = static_cast<double>(
      hetero::core::standardize(input).iterations);
}
BENCHMARK(BM_SinkhornPositive)
    ->Args({4, 4})
    ->Args({12, 5})
    ->Args({17, 5})
    ->Args({32, 16})
    ->Args({64, 32})
    ->Args({128, 64})
    ->Args({512, 16});

void BM_SinkhornReference(benchmark::State& state) {
  // The pre-fusion kernel (per-column strided col_sum recomputation), kept
  // in-tree for equivalence tests — the honest before/after baseline.
  const auto t = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const Matrix input = random_positive(t, m, 42);
  for (auto _ : state) {
    auto r = hetero::core::standardize_reference(input);
    benchmark::DoNotOptimize(r.residual);
  }
}
BENCHMARK(BM_SinkhornReference)
    ->Args({4, 4})
    ->Args({12, 5})
    ->Args({17, 5})
    ->Args({32, 16})
    ->Args({64, 32})
    ->Args({128, 64})
    ->Args({512, 16});

void BM_SinkhornWarmStart(benchmark::State& state) {
  // The annealing proposal pattern: one entry nudged, the incumbent's
  // converged scalings seed the solve, skipping most cold iterations (see
  // the "iterations" counters here and above).
  const auto t = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const Matrix incumbent = random_positive(t, m, 42);
  const auto base = hetero::core::standardize(incumbent);
  Matrix proposal = incumbent;
  proposal(t / 2, m / 2) *= 1.05;
  hetero::core::SinkhornOptions warm;
  warm.warm_row_scale = base.row_scale;
  warm.warm_col_scale = base.col_scale;
  for (auto _ : state) {
    auto r = hetero::core::standardize(proposal, warm);
    benchmark::DoNotOptimize(r.residual);
  }
  state.counters["iterations"] = static_cast<double>(
      hetero::core::standardize(proposal, warm).iterations);
}
BENCHMARK(BM_SinkhornWarmStart)
    ->Args({12, 5})
    ->Args({32, 16})
    ->Args({64, 32})
    ->Args({128, 64});

void BM_SinkhornLimitOnlyPattern(benchmark::State& state) {
  // Support without total support: row 0 runs only on machine 0, so the
  // other rows' (i, 0) entries lie on no positive diagonal — exercises the
  // core projection path.
  Matrix input = random_positive(8, 8, 7);
  for (std::size_t j = 1; j < 8; ++j) input(0, j) = 0.0;
  for (auto _ : state) {
    auto r = hetero::core::standardize(input);
    benchmark::DoNotOptimize(r.converged);
  }
}
BENCHMARK(BM_SinkhornLimitOnlyPattern);

void BM_ClassifyPattern(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix input = random_positive(n, n, 11);
  // Sparsify to make the combinatorial path non-trivial.
  std::mt19937 rng(13);
  std::bernoulli_distribution zero(0.4);
  for (double& x : input.data())
    if (zero(rng)) x = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    if (input.row_sum(i) == 0.0) input(i, i % n) = 1.0;
  for (std::size_t j = 0; j < n; ++j)
    if (input.col_sum(j) == 0.0) input(j % n, j) = 1.0;
  for (auto _ : state) {
    auto c = hetero::core::classify_pattern(input);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ClassifyPattern)->Arg(8)->Arg(32)->Arg(128);

void BM_SupportCore(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix input = random_positive(n, n, 17);
  input(0, 1) = 0.0;
  for (auto _ : state) {
    auto core = hetero::graph::support_core(input);
    benchmark::DoNotOptimize(core->data());
  }
}
BENCHMARK(BM_SupportCore)->Arg(8)->Arg(32)->Arg(128);

void BM_SinkhornTiled(benchmark::State& state) {
  // The tiled pool-parallel sweep of the large-matrix path, on the shared
  // pool — the honest comparison row against BM_SinkhornPositive.
  const auto t = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const Matrix input = random_positive(t, m, 42);
  auto& pool = hetero::par::shared_pool();
  for (auto _ : state) {
    auto r = hetero::core::standardize_tiled(input, {}, pool);
    benchmark::DoNotOptimize(r.residual);
  }
  state.counters["iterations"] = static_cast<double>(
      hetero::core::standardize_tiled(input, {}, pool).iterations);
}
BENCHMARK(BM_SinkhornTiled)
    ->Args({128, 64})
    ->Args({512, 16})
    ->Args({1024, 128});

}  // namespace

int main(int argc, char** argv) {
  const auto sizes = hetero::bench::parse_sizes(&argc, argv);
  for (const auto& [t, m] : sizes) {
    benchmark::RegisterBenchmark("BM_SinkhornPositive", BM_SinkhornPositive)
        ->Args({t, m});
    benchmark::RegisterBenchmark("BM_SinkhornTiled", BM_SinkhornTiled)
        ->Args({t, m});
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
