// Microbenchmarks of the dynamic simulator: immediate modes are O(N * M)
// over N arrivals. Batch mode re-maps the pending set at every arrival;
// the default simulate_batch warm-starts the incremental BatchEngine from
// the previous event, while the *Reference variants re-run the heuristic
// cold (quadratic-ish in the queue depth) for before/after comparison.
#include <benchmark/benchmark.h>

#include "etcgen/range_based.hpp"
#include "sched/dynamic.hpp"

namespace {

using hetero::core::EtcMatrix;
namespace sc = hetero::sched;

struct Fixture {
  EtcMatrix etc;
  std::vector<sc::Arrival> arrivals;
};

Fixture make_fixture(std::size_t arrival_count) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(1234);
  hetero::etcgen::RangeBasedOptions opts;
  opts.tasks = 16;
  opts.machines = 8;
  EtcMatrix etc = hetero::etcgen::generate_range_based(opts, rng);
  // Moderate load: arrival rate ~ machines / mean-fastest-runtime.
  auto arrivals = sc::poisson_arrivals(etc, 8.0 / 50.0, arrival_count, rng);
  return Fixture{std::move(etc), std::move(arrivals)};
}

void BM_ImmediateMct(benchmark::State& state) {
  const Fixture f = make_fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = sc::simulate_immediate(f.etc, f.arrivals, sc::ImmediateMode::mct);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_ImmediateMct)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ImmediateSwitching(benchmark::State& state) {
  const Fixture f = make_fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = sc::simulate_immediate(f.etc, f.arrivals,
                                    sc::ImmediateMode::switching);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_ImmediateSwitching)->Arg(100)->Arg(1000)->Arg(10000);

void BM_BatchMinMin(benchmark::State& state) {
  const Fixture f = make_fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = sc::simulate_batch_min_min(f.etc, f.arrivals);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_BatchMinMin)->Arg(100)->Arg(400)->Arg(1000);

void BM_BatchMinMinReference(benchmark::State& state) {
  const Fixture f = make_fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = sc::simulate_batch_reference(f.etc, f.arrivals,
                                          sc::BatchHeuristic::min_min);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_BatchMinMinReference)->Arg(100)->Arg(400)->Arg(1000);

void BM_BatchSufferage(benchmark::State& state) {
  const Fixture f = make_fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = sc::simulate_batch(f.etc, f.arrivals,
                                sc::BatchHeuristic::sufferage);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_BatchSufferage)->Arg(100)->Arg(400)->Arg(1000);

void BM_BatchSufferageReference(benchmark::State& state) {
  const Fixture f = make_fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = sc::simulate_batch_reference(f.etc, f.arrivals,
                                          sc::BatchHeuristic::sufferage);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_BatchSufferageReference)->Arg(100)->Arg(400)->Arg(1000);

}  // namespace
