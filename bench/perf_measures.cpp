// Microbenchmarks of the end-to-end measure computations, including the
// SPEC-sized matrices of the paper's evaluation.
#include <benchmark/benchmark.h>

#include <numeric>
#include <random>
#include <vector>

#include "core/batch.hpp"
#include "core/measures.hpp"
#include "linalg/svd.hpp"
#include "parallel/thread_pool.hpp"
#include "spec/spec_data.hpp"

namespace {

using hetero::core::EcsMatrix;
using hetero::linalg::Matrix;

EcsMatrix random_ecs(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::lognormal_distribution<double> dist(0.0, 0.8);
  Matrix m(rows, cols);
  for (double& x : m.data()) x = dist(rng);
  return EcsMatrix(std::move(m));
}

void BM_MphTdh(benchmark::State& state) {
  const auto ecs = random_ecs(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hetero::core::mph(ecs));
    benchmark::DoNotOptimize(hetero::core::tdh(ecs));
  }
}
BENCHMARK(BM_MphTdh)->Args({12, 5})->Args({64, 16})->Args({256, 64});

void BM_Tma(benchmark::State& state) {
  const auto ecs = random_ecs(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)), 43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hetero::core::tma(ecs));
  }
}
BENCHMARK(BM_Tma)->Args({12, 5})->Args({17, 5})->Args({64, 16})->Args({128, 32});

void BM_FullCharacterization(benchmark::State& state) {
  const auto ecs = random_ecs(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)), 44);
  for (auto _ : state) {
    auto report = hetero::core::characterize(ecs);
    benchmark::DoNotOptimize(report.measures.tma);
  }
}
BENCHMARK(BM_FullCharacterization)->Args({12, 5})->Args({64, 16});

double mean_nonmax(const std::vector<double>& descending) {
  const double sum =
      std::accumulate(descending.begin() + 1, descending.end(), 0.0);
  return sum / static_cast<double>(descending.size() - 1);
}

void BM_StandardizeTma(benchmark::State& state) {
  // The full eq. 8 pipeline — fused Sinkhorn + incremental cache-aware
  // Jacobi — at the acceptance-criterion size (128 x 64).
  const auto ecs = random_ecs(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)), 45);
  for (auto _ : state) {
    const auto sf = hetero::core::standardize(ecs.values());
    const auto sv = hetero::linalg::singular_values(sf.standard);
    benchmark::DoNotOptimize(mean_nonmax(sv));
  }
}
BENCHMARK(BM_StandardizeTma)->Args({64, 32})->Args({128, 64});

void BM_StandardizeTmaReference(benchmark::State& state) {
  // Same pipeline through the pre-optimization kernels.
  const auto ecs = random_ecs(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)), 45);
  for (auto _ : state) {
    const auto sf = hetero::core::standardize_reference(ecs.values());
    const auto sv = hetero::linalg::singular_values_reference(sf.standard);
    benchmark::DoNotOptimize(mean_nonmax(sv));
  }
}
BENCHMARK(BM_StandardizeTmaReference)->Args({64, 32})->Args({128, 64});

void BM_BatchMeasures(benchmark::State& state) {
  // The parallel batch-analysis API over a suite of environments, as the
  // taxonomy/sweep studies use it.
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<EcsMatrix> suite;
  suite.reserve(count);
  for (std::size_t k = 0; k < count; ++k)
    suite.push_back(random_ecs(64, 16, 100 + static_cast<unsigned>(k)));
  hetero::par::ThreadPool pool;
  for (auto _ : state) {
    auto measures = hetero::core::batch_measures(suite, pool);
    benchmark::DoNotOptimize(measures.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_BatchMeasures)->Arg(12)->Arg(48);

void BM_SerialMeasures(benchmark::State& state) {
  // The serial loop BM_BatchMeasures replaces, for the scaling comparison.
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<EcsMatrix> suite;
  suite.reserve(count);
  for (std::size_t k = 0; k < count; ++k)
    suite.push_back(random_ecs(64, 16, 100 + static_cast<unsigned>(k)));
  for (auto _ : state) {
    std::vector<hetero::core::MeasureSet> measures;
    measures.reserve(suite.size());
    for (const auto& ecs : suite)
      measures.push_back(hetero::core::measure_set(ecs));
    benchmark::DoNotOptimize(measures.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_SerialMeasures)->Arg(12)->Arg(48);

void BM_SpecCint(benchmark::State& state) {
  const auto ecs = hetero::spec::spec_cint2006rate().to_ecs();
  for (auto _ : state) {
    auto m = hetero::core::measure_set(ecs);
    benchmark::DoNotOptimize(m.tma);
  }
}
BENCHMARK(BM_SpecCint);

void BM_SpecCfp(benchmark::State& state) {
  const auto ecs = hetero::spec::spec_cfp2006rate().to_ecs();
  for (auto _ : state) {
    auto m = hetero::core::measure_set(ecs);
    benchmark::DoNotOptimize(m.tma);
  }
}
BENCHMARK(BM_SpecCfp);

}  // namespace
