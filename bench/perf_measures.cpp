// Microbenchmarks of the end-to-end measure computations, including the
// SPEC-sized matrices of the paper's evaluation.
#include <benchmark/benchmark.h>

#include <random>

#include "core/measures.hpp"
#include "spec/spec_data.hpp"

namespace {

using hetero::core::EcsMatrix;
using hetero::linalg::Matrix;

EcsMatrix random_ecs(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::lognormal_distribution<double> dist(0.0, 0.8);
  Matrix m(rows, cols);
  for (double& x : m.data()) x = dist(rng);
  return EcsMatrix(std::move(m));
}

void BM_MphTdh(benchmark::State& state) {
  const auto ecs = random_ecs(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hetero::core::mph(ecs));
    benchmark::DoNotOptimize(hetero::core::tdh(ecs));
  }
}
BENCHMARK(BM_MphTdh)->Args({12, 5})->Args({64, 16})->Args({256, 64});

void BM_Tma(benchmark::State& state) {
  const auto ecs = random_ecs(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)), 43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hetero::core::tma(ecs));
  }
}
BENCHMARK(BM_Tma)->Args({12, 5})->Args({17, 5})->Args({64, 16})->Args({128, 32});

void BM_FullCharacterization(benchmark::State& state) {
  const auto ecs = random_ecs(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)), 44);
  for (auto _ : state) {
    auto report = hetero::core::characterize(ecs);
    benchmark::DoNotOptimize(report.measures.tma);
  }
}
BENCHMARK(BM_FullCharacterization)->Args({12, 5})->Args({64, 16});

void BM_SpecCint(benchmark::State& state) {
  const auto ecs = hetero::spec::spec_cint2006rate().to_ecs();
  for (auto _ : state) {
    auto m = hetero::core::measure_set(ecs);
    benchmark::DoNotOptimize(m.tma);
  }
}
BENCHMARK(BM_SpecCint);

void BM_SpecCfp(benchmark::State& state) {
  const auto ecs = hetero::spec::spec_cfp2006rate().to_ecs();
  for (auto _ : state) {
    auto m = hetero::core::measure_set(ecs);
    benchmark::DoNotOptimize(m.tma);
  }
}
BENCHMARK(BM_SpecCfp);

}  // namespace
