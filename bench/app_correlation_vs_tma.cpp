// Bridges this paper's TMA to the later correlation-based ETC
// characterization (Canon & Philippe): sweeps the target mean column
// correlation and reports the resulting measures. Column correlation and
// TMA are near-mirror axes — fully correlated columns are proportional
// (no affinity), independent columns are specialized.
#include <iostream>

#include "core/measures.hpp"
#include "etcgen/correlation.hpp"
#include "io/table.hpp"

int main() {
  using hetero::io::format_fixed;
  namespace eg = hetero::etcgen;

  constexpr int kReps = 10;
  std::cout << "Column correlation vs this paper's measures (30 tasks x 6 "
               "machines, " << kReps << " seeds per point)\n\n";
  hetero::io::Table t({"target corr", "measured corr", "TMA", "MPH", "TDH"});
  for (const double target : {0.0, 0.2, 0.4, 0.6, 0.8, 0.95}) {
    double corr = 0, tma = 0, mph = 0, tdh = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      eg::Rng rng = eg::make_rng(
          static_cast<std::uint64_t>(1000 * target) + 17 * rep + 3);
      eg::CorrelationOptions opts;
      opts.tasks = 30;
      opts.machines = 6;
      opts.column_correlation = std::min(target, 0.99);
      const auto etc = eg::generate_correlated(opts, rng);
      corr += eg::mean_column_correlation(etc);
      const auto m = hetero::core::measure_set(etc.to_ecs());
      tma += m.tma;
      mph += m.mph;
      tdh += m.tdh;
    }
    t.add_row({format_fixed(target, 2), format_fixed(corr / kReps, 2),
               format_fixed(tma / kReps, 3), format_fixed(mph / kReps, 2),
               format_fixed(tdh / kReps, 2)});
  }
  t.print(std::cout);
  std::cout << "\nTMA falls monotonically as column correlation rises while "
               "MPH/TDH barely move —\nthe affinity axis is exactly the "
               "anti-correlation axis, measured independently of the\n"
               "homogeneity axes (the paper's independence property).\n";
  return 0;
}
