// Application study (paper Section I, application b / ref [3]): selecting an
// appropriate mapping heuristic for an HC environment based on its
// heterogeneity. Environments are generated at prescribed (MPH, TMA)
// coordinates with the measure-targeted generator; the Braun et al.
// heuristics compete on each, and the table reports makespans normalized by
// the lower bound, with the winner per cell.
#include <iostream>
#include <vector>

#include "etcgen/target_measures.hpp"
#include "io/table.hpp"
#include "parallel/thread_pool.hpp"
#include "sched/evolutionary.hpp"
#include "sched/heuristics.hpp"

int main() {
  using hetero::io::format_fixed;
  namespace eg = hetero::etcgen;
  namespace sc = hetero::sched;

  hetero::par::ThreadPool pool;
  const double mph_levels[] = {0.95, 0.6, 0.3};
  const double tma_levels[] = {0.02, 0.2, 0.45};

  std::cout << "Heuristic selection by heterogeneity region\n"
               "(10 tasks x 6 machines, 4 instances per task type; makespan "
               "/ lower bound)\n\n";

  std::vector<std::string> header{"MPH", "TMA"};
  for (const auto& h : sc::standard_heuristics()) header.push_back(h.name);
  header.push_back("GA");
  header.push_back("winner");
  hetero::io::Table t(std::move(header));

  // The GA breeds across the same pool used by the generator; per-slot RNG
  // substreams keep the result identical to a serial run.
  sc::GaMapperOptions ga;
  ga.population = 40;
  ga.generations = 60;
  ga.seed = 7;
  ga.pool = &pool;

  for (double mph : mph_levels) {
    for (double tma : tma_levels) {
      eg::TargetGenOptions opts;
      opts.tasks = 10;
      opts.machines = 6;
      opts.seed = static_cast<std::uint64_t>(mph * 1000 + tma * 100);
      opts.anneal_iterations = 10000;
      opts.restarts = 2;
      opts.tolerance = 0.02;
      opts.pool = &pool;
      const auto env =
          eg::generate_with_measures({mph, 0.8, tma}, opts);
      const auto etc = env.ecs.to_etc();

      sc::TaskList tasks;
      for (std::size_t rep = 0; rep < 4; ++rep)
        for (std::size_t i = 0; i < etc.task_count(); ++i)
          tasks.push_back(i);

      const double lb = sc::makespan_lower_bound(etc, tasks);
      std::vector<std::string> row{format_fixed(env.achieved.mph, 2),
                                   format_fixed(env.achieved.tma, 2)};
      double best = 1e300;
      std::string winner;
      for (const auto& h : sc::standard_heuristics()) {
        const double ms = sc::makespan(etc, tasks, h.map(etc, tasks));
        row.push_back(format_fixed(ms / lb, 3));
        if (ms < best) {
          best = ms;
          winner = h.name;
        }
      }
      const double ga_ms =
          sc::makespan(etc, tasks, sc::map_genetic(etc, tasks, ga));
      row.push_back(format_fixed(ga_ms / lb, 3));
      if (ga_ms < best) {
        best = ga_ms;
        winner = "GA";
      }
      row.push_back(winner);
      t.add_row(std::move(row));
    }
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: load-blind heuristics (OLB, MET) degrade "
               "as MPH falls or TMA rises;\nbatch heuristics (Min-Min, "
               "Sufferage, Duplex) dominate in heterogeneous regions; the "
               "GA\n(seeded with Min-Min) matches or beats the list "
               "heuristics at ~100x their cost.\n";
  return 0;
}
