// Benchmarks of the measure-targeted annealing generator's inner loop: the
// fused incremental proposal chain (IncrementalMeasures: maintained sums,
// insertion-resorted homogeneities, warm-started Sinkhorn, incremental
// Jacobi) against the pre-optimization chain (full matrix copy + cold
// standardize_reference + singular_values_reference + fresh sorts per
// proposal), plus the end-to-end generator.
#include <benchmark/benchmark.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/measures.hpp"
#include "core/standard_form.hpp"
#include "etcgen/rng.hpp"
#include "etcgen/target_measures.hpp"
#include "linalg/svd.hpp"

namespace {

using hetero::core::EcsMatrix;
using hetero::linalg::Matrix;
namespace eg = hetero::etcgen;

constexpr int kProposalsPerIteration = 64;

Matrix random_positive(std::size_t rows, std::size_t cols,
                       std::uint64_t seed) {
  auto rng = eg::make_rng(seed);
  Matrix m(rows, cols);
  for (double& x : m.data()) x = std::exp(eg::normal(rng, 0.0, 0.8));
  return m;
}

// One cold-chain evaluation, exactly as the generator measured candidates
// before the incremental rewrite (the old measure_set_raw): fresh sum
// vectors + sort-based MPH/TDH, cold unfused Sinkhorn at the fixed 1e-9
// energy budget the old generator used, pre-optimization Jacobi.
hetero::core::MeasureSet reference_measures(const Matrix& m) {
  hetero::core::MeasureSet out;
  out.mph = hetero::core::adjacent_ratio_homogeneity(m.col_sums());
  out.tdh = hetero::core::adjacent_ratio_homogeneity(m.row_sums());
  hetero::core::SinkhornOptions energy;
  energy.tolerance = 1e-9;
  energy.max_iterations = 500;
  const auto sf = hetero::core::standardize_reference(m, energy);
  const auto sv = hetero::linalg::singular_values_reference(sf.standard);
  out.tma = std::accumulate(sv.begin() + 1, sv.end(), 0.0) /
            static_cast<double>(sv.size() - 1);
  return out;
}

void BM_AnnealChainReference(benchmark::State& state) {
  // A Metropolis-style proposal chain through the pre-optimization
  // measurement path. Acceptance is deterministic (every other proposal) so
  // both chain benchmarks do identical accept/reject bookkeeping.
  const auto t = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const Matrix seed = random_positive(t, m, 99);
  for (auto _ : state) {
    auto rng = eg::make_rng(7);
    Matrix incumbent = seed;
    for (int p = 0; p < kProposalsPerIteration; ++p) {
      Matrix candidate = incumbent;
      const std::size_t k = eg::uniform_index(rng, candidate.data().size());
      candidate.data()[k] *= std::exp(eg::normal(rng, 0.0, 0.1));
      const auto measures = reference_measures(candidate);
      benchmark::DoNotOptimize(measures.tma);
      if (p % 2 == 0) incumbent = std::move(candidate);
    }
    benchmark::DoNotOptimize(incumbent.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kProposalsPerIteration);
}
BENCHMARK(BM_AnnealChainReference)->Args({8, 5})->Args({16, 8})->Args({32, 16});

void BM_AnnealChainIncremental(benchmark::State& state) {
  // The same chain through IncrementalMeasures, configured exactly as the
  // generator configures it at the measure-sweep app's tolerance (0.02).
  const auto t = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const Matrix seed = random_positive(t, m, 99);
  const auto search = eg::search_sinkhorn_options(0.02);
  for (auto _ : state) {
    auto rng = eg::make_rng(7);
    eg::IncrementalMeasures inc(seed, search);
    for (int p = 0; p < kProposalsPerIteration; ++p) {
      const std::size_t k = eg::uniform_index(rng, seed.data().size());
      const double value =
          inc.matrix().data()[k] * std::exp(eg::normal(rng, 0.0, 0.1));
      const auto& measures = inc.propose(k, value);
      benchmark::DoNotOptimize(measures.tma);
      if (p % 2 == 0)
        inc.accept();
      else
        inc.reject();
    }
    benchmark::DoNotOptimize(inc.current().tma);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kProposalsPerIteration);
}
BENCHMARK(BM_AnnealChainIncremental)
    ->Args({8, 5})
    ->Args({16, 8})
    ->Args({32, 16});

void BM_GenerateWithMeasures(benchmark::State& state) {
  // End-to-end measure-targeted generation at the paper's working size.
  eg::TargetMeasures target{0.5, 0.5, 0.2};
  eg::TargetGenOptions opts;
  opts.tasks = 8;
  opts.machines = 5;
  opts.seed = 31;
  opts.anneal_iterations = 3000;
  opts.restarts = 1;
  opts.tolerance = 0.02;
  for (auto _ : state) {
    auto result = eg::generate_with_measures(target, opts);
    benchmark::DoNotOptimize(result.error);
  }
}
BENCHMARK(BM_GenerateWithMeasures)->Unit(benchmark::kMillisecond);

}  // namespace
