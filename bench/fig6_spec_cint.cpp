// Reproduces paper Figure 6: the SPEC CINT2006Rate ETC matrix (12 task
// types x 5 machines, peak runtimes) and its measures
// TDH = 0.90, MPH = 0.82, TMA = 0.07, with the Sinkhorn iteration count
// (paper: 6 iterations at tolerance 1e-8). Also prints Figure 5's machine
// list. The embedded runtimes are calibrated synthetic data (DESIGN.md §4).
#include <iostream>

#include "core/measures.hpp"
#include "io/table.hpp"
#include "spec/spec_data.hpp"

int main() {
  using hetero::io::format_fixed;

  std::cout << "Figure 5 — machines\n";
  for (const auto& m : hetero::spec::spec_machines())
    std::cout << "  " << m.id << " = " << m.description << '\n';

  const auto& etc = hetero::spec::spec_cint2006rate();
  std::cout << "\nFigure 6 — SPEC CINT2006Rate peak runtimes (s)\n\n";
  hetero::io::print_etc(std::cout, etc, 1);

  const auto ecs = etc.to_ecs();
  const auto detail = hetero::core::tma_detailed(ecs);
  const auto m = hetero::core::measure_set(ecs);

  hetero::io::Table t({"measure", "measured", "paper"});
  t.add_row({"TDH", format_fixed(m.tdh, 2), "0.90"});
  t.add_row({"MPH", format_fixed(m.mph, 2), "0.82"});
  t.add_row({"TMA", format_fixed(m.tma, 2), "0.07"});
  std::cout << '\n';
  t.print(std::cout);
  std::cout << "\nSinkhorn iterations to 1e-8: "
            << detail.standard_form.iterations << " (paper: 6)\n";
  return 0;
}
