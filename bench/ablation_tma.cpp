// Ablation: why the paper replaced the column-normalized TMA of [2]
// (eq. 5) with the standard-form TMA (eq. 8).
//
// The experiment scales rows and columns of a fixed affinity structure —
// transformations that change MPH/TDH but not the underlying affinity —
// and reports how far each TMA variant drifts. Eq. 5 is contaminated by
// task-difficulty heterogeneity (the motivation for Section III); eq. 8 is
// invariant by construction.
#include <cmath>
#include <iostream>
#include <random>
#include <vector>

#include "core/batch.hpp"
#include "io/table.hpp"
#include "parallel/thread_pool.hpp"

int main() {
  using hetero::core::EcsMatrix;
  using hetero::io::format_fixed;
  using hetero::linalg::Matrix;

  const Matrix base{{5, 1, 2}, {1, 6, 1}, {2, 1, 7}, {1, 2, 2}};
  const double eq8_base = hetero::core::tma(EcsMatrix(base));
  const double eq5_base = hetero::core::tma_column_normalized(EcsMatrix(base));

  std::mt19937 rng(12345);
  std::uniform_real_distribution<double> dist(0.1, 10.0);

  constexpr int kTrials = 200;
  std::vector<Matrix> scaled_trials;
  scaled_trials.reserve(kTrials);
  for (int trial = 0; trial < kTrials; ++trial) {
    Matrix scaled = base;
    for (std::size_t i = 0; i < scaled.rows(); ++i)
      scaled.scale_row(i, dist(rng));
    for (std::size_t j = 0; j < scaled.cols(); ++j)
      scaled.scale_col(j, dist(rng));
    scaled_trials.push_back(std::move(scaled));
  }

  // The eq. 8 TMA of all trials in one parallel batch; eq. 5 via a plain
  // parallel_for (it has no batch entry point — it is the rejected measure).
  hetero::par::ThreadPool pool;
  const auto eq8_measures = hetero::core::batch_measures(scaled_trials, pool);
  std::vector<double> eq5_values(kTrials);
  hetero::par::parallel_for(pool, 0, scaled_trials.size(), [&](std::size_t k) {
    eq5_values[k] =
        hetero::core::tma_column_normalized(EcsMatrix(scaled_trials[k]));
  });

  double eq5_max_drift = 0.0, eq8_max_drift = 0.0;
  double eq5_sum_drift = 0.0, eq8_sum_drift = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const double eq8 = eq8_measures[static_cast<std::size_t>(trial)].tma;
    const double eq5 = eq5_values[static_cast<std::size_t>(trial)];
    eq8_max_drift = std::max(eq8_max_drift, std::abs(eq8 - eq8_base));
    eq5_max_drift = std::max(eq5_max_drift, std::abs(eq5 - eq5_base));
    eq8_sum_drift += std::abs(eq8 - eq8_base);
    eq5_sum_drift += std::abs(eq5 - eq5_base);
  }

  std::cout << "TMA ablation: eq. 5 (column-normalized, [2]) vs eq. 8 "
               "(standard form, this paper)\n"
            << kTrials
            << " random row/column scalings of one affinity structure\n\n";
  hetero::io::Table t({"variant", "base TMA", "mean |drift|", "max |drift|"});
  t.add_row({"eq. 5 column-normalized", format_fixed(eq5_base, 4),
             format_fixed(eq5_sum_drift / kTrials, 4),
             format_fixed(eq5_max_drift, 4)});
  t.add_row({"eq. 8 standard form", format_fixed(eq8_base, 4),
             format_fixed(eq8_sum_drift / kTrials, 4),
             format_fixed(eq8_max_drift, 4)});
  t.print(std::cout);
  std::cout << "\nThe standard-form TMA is invariant to the scalings (drift "
               "~ solver tolerance);\nthe eq. 5 variant conflates affinity "
               "with task-difficulty spread.\n";
  return 0;
}
