// Application study: immediate-mode vs batch-mode dynamic mapping across
// heterogeneity regimes. Extends the paper's application (b) from static
// batches to arrival-driven workloads: the measures predict when
// sophisticated (batch) mapping pays off.
#include <iostream>

#include "core/measures.hpp"
#include "etcgen/range_based.hpp"
#include "io/table.hpp"
#include "sched/dynamic.hpp"

int main() {
  using hetero::io::format_fixed;
  namespace eg = hetero::etcgen;
  namespace sc = hetero::sched;

  std::cout << "Immediate vs batch dynamic mapping by heterogeneity regime\n"
               "(8 task types x 4 machines, 80 Poisson arrivals, mean flow "
               "time normalized by OLB)\n\n";

  hetero::io::Table t({"regime", "MPH", "TMA", "OLB", "MET", "MCT",
                       "KPB(50%)", "Switching", "batch Min-Min",
                       "batch Sufferage"});
  eg::Rng rng = eg::make_rng(4242);
  struct Regime {
    const char* name;
    double task_range, machine_range;
    eg::Consistency consistency;
  };
  const Regime regimes[] = {
      {"homogeneous machines", 20.0, 1.3, eg::Consistency::inconsistent},
      {"hetero, consistent", 20.0, 15.0, eg::Consistency::consistent},
      {"hetero, inconsistent", 20.0, 15.0, eg::Consistency::inconsistent},
      {"extreme heterogeneity", 100.0, 60.0, eg::Consistency::inconsistent},
  };

  for (const Regime& regime : regimes) {
    eg::RangeBasedOptions opts;
    opts.tasks = 8;
    opts.machines = 4;
    opts.task_range = regime.task_range;
    opts.machine_range = regime.machine_range;
    opts.consistency = regime.consistency;
    const auto etc = eg::generate_range_based(opts, rng);
    const auto m = hetero::core::measure_set(etc.to_ecs());

    // Arrival rate scaled to keep the system moderately loaded.
    double mean_best = 0.0;
    for (std::size_t i = 0; i < etc.task_count(); ++i) {
      double best = etc(i, 0);
      for (std::size_t j = 1; j < etc.machine_count(); ++j)
        best = std::min(best, etc(i, j));
      mean_best += best;
    }
    mean_best /= static_cast<double>(etc.task_count());
    const double rate =
        0.7 * static_cast<double>(etc.machine_count()) / mean_best;
    const auto arrivals = sc::poisson_arrivals(etc, rate, 80, rng);

    const double olb =
        sc::simulate_immediate(etc, arrivals, sc::ImmediateMode::olb)
            .mean_flow_time;
    const auto norm = [&](double v) { return format_fixed(v / olb, 3); };
    t.add_row(
        {regime.name, format_fixed(m.mph, 2), format_fixed(m.tma, 2), "1.000",
         norm(sc::simulate_immediate(etc, arrivals, sc::ImmediateMode::met)
                  .mean_flow_time),
         norm(sc::simulate_immediate(etc, arrivals, sc::ImmediateMode::mct)
                  .mean_flow_time),
         norm(sc::simulate_immediate(etc, arrivals, sc::ImmediateMode::kpb)
                  .mean_flow_time),
         norm(sc::simulate_immediate(etc, arrivals,
                                     sc::ImmediateMode::switching)
                  .mean_flow_time),
         norm(sc::simulate_batch_min_min(etc, arrivals).mean_flow_time),
         norm(sc::simulate_batch(etc, arrivals,
                                 sc::BatchHeuristic::sufferage)
                  .mean_flow_time)});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: in homogeneous regimes OLB is already "
               "fine; as MPH drops, execution-time-aware\nmodes (MCT, KPB, "
               "batch) win by widening margins, and MET collapses whenever "
               "one machine\ndominates (consistent case).\n";
  return 0;
}
