// Size-frontier sweep of the large-matrix characterization path: tiled
// Sinkhorn standardization, the blocked Gram spectrum, the randomized
// top-k SVD, and the end-to-end blocked characterize. Default sizes stay
// CI-friendly; the full frontier run is
//
//   build/bench/perf_rsvd --sizes=1024x128,2048x192,4096x256,8192x512,16384x1024
//
// (the last row is the paper-scale 16384x1024 target environment).
#include <benchmark/benchmark.h>

#include <random>

#include "bench_sizes.hpp"
#include "core/measures.hpp"
#include "core/standard_form.hpp"
#include "linalg/rsvd.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using hetero::linalg::Matrix;

Matrix random_positive(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::lognormal_distribution<double> dist(0.0, 0.7);
  Matrix m(rows, cols, 0.0);
  for (double& x : m.data()) x = dist(rng);
  return m;
}

void BM_TiledSinkhorn(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const Matrix input = random_positive(t, m, 42);
  auto& pool = hetero::par::shared_pool();
  for (auto _ : state) {
    auto r = hetero::core::standardize_tiled(input, {}, pool);
    benchmark::DoNotOptimize(r.residual);
  }
}

void BM_BlockedSpectrum(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  auto& pool = hetero::par::shared_pool();
  const Matrix std_form =
      hetero::core::standardize_tiled(random_positive(t, m, 42), {}, pool)
          .standard;
  for (auto _ : state) {
    auto sv = hetero::linalg::blocked_singular_values(std_form, {48, &pool});
    benchmark::DoNotOptimize(sv.data());
  }
}

void BM_Rsvd(benchmark::State& state) {
  // Top-17 modes (the affinity-analysis default of 16 + the uniform mode).
  const auto t = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const Matrix input = random_positive(t, m, 42);
  hetero::linalg::RsvdOptions opts;
  opts.rank = 17;
  opts.pool = &hetero::par::shared_pool();
  for (auto _ : state) {
    auto r = hetero::linalg::rsvd(input, opts);
    benchmark::DoNotOptimize(r.singular_values.data());
  }
}

void BM_BlockedCharacterize(benchmark::State& state) {
  // End to end: MP/TD vectors, MPH/TDH, and TMA through the blocked path
  // (forced below the default threshold so every sweep size takes it).
  const auto t = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const hetero::core::EcsMatrix ecs(random_positive(t, m, 42));
  hetero::core::TmaOptions opts;
  opts.large.min_elements = 1;
  for (auto _ : state) {
    auto report = hetero::core::characterize(ecs, {}, opts);
    benchmark::DoNotOptimize(report.measures.tma);
  }
}

void BM_DenseCharacterize(benchmark::State& state) {
  // The dense-twin baseline row (blocked path disabled); register_size
  // drops it above 8M elements, where a single Jacobi solve costs minutes.
  const auto t = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const hetero::core::EcsMatrix ecs(random_positive(t, m, 42));
  hetero::core::TmaOptions opts;
  opts.large.min_elements = 0;
  for (auto _ : state) {
    auto report = hetero::core::characterize(ecs, {}, opts);
    benchmark::DoNotOptimize(report.measures.tma);
  }
}

void register_size(long t, long m) {
  benchmark::RegisterBenchmark("BM_TiledSinkhorn", BM_TiledSinkhorn)
      ->Args({t, m});
  benchmark::RegisterBenchmark("BM_BlockedSpectrum", BM_BlockedSpectrum)
      ->Args({t, m});
  benchmark::RegisterBenchmark("BM_Rsvd", BM_Rsvd)->Args({t, m});
  benchmark::RegisterBenchmark("BM_BlockedCharacterize",
                               BM_BlockedCharacterize)
      ->Args({t, m});
  if (static_cast<std::size_t>(t) * static_cast<std::size_t>(m) <=
      (std::size_t{1} << 23))
    benchmark::RegisterBenchmark("BM_DenseCharacterize", BM_DenseCharacterize)
        ->Args({t, m});
}

}  // namespace

int main(int argc, char** argv) {
  auto sizes = hetero::bench::parse_sizes(&argc, argv);
  if (sizes.empty()) sizes = {{1024, 128}, {2048, 192}, {4096, 256}};
  for (const auto& [t, m] : sizes) register_size(t, m);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
