// Application study: allocation robustness vs heterogeneity (the FePIA
// robustness lineage of paper refs [7, 11]). For environments across the
// MPH range, maps a batch with each heuristic, computes the robustness
// metric against a 20%-slack makespan constraint, and Monte-Carlo-validates
// it: the fraction of lognormal ETC perturbations that actually violate
// the constraint should fall as the metric grows.
#include <cmath>
#include <iostream>

#include "core/measures.hpp"
#include "etcgen/noise.hpp"
#include "etcgen/target_measures.hpp"
#include "io/table.hpp"
#include "parallel/thread_pool.hpp"
#include "sched/heuristics.hpp"
#include "sched/robustness.hpp"

namespace {

// Fraction of noisy replays whose makespan (same assignment, perturbed
// times) exceeds tau.
double violation_rate(const hetero::core::EtcMatrix& etc,
                      const hetero::sched::TaskList& tasks,
                      const hetero::sched::Assignment& assignment, double tau,
                      double noise_cov, hetero::etcgen::Rng& rng) {
  constexpr int kReps = 200;
  int violations = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto noisy = hetero::etcgen::perturb_lognormal(etc, noise_cov, rng);
    if (hetero::sched::makespan(noisy, tasks, assignment) > tau) ++violations;
  }
  return static_cast<double>(violations) / kReps;
}

}  // namespace

int main() {
  using hetero::io::format_fixed;
  namespace eg = hetero::etcgen;
  namespace sc = hetero::sched;

  hetero::par::ThreadPool pool;
  std::cout << "Allocation robustness vs machine heterogeneity\n"
               "(10x6, 3 instances per task, tau = 1.2 x estimated makespan, "
               "15% ETC noise)\n\n";

  hetero::io::Table t({"MPH", "heuristic", "norm. robustness",
                       "violation rate"});
  eg::Rng rng = eg::make_rng(31337);
  for (const double mph : {0.9, 0.5, 0.25}) {
    eg::TargetGenOptions opts;
    opts.tasks = 10;
    opts.machines = 6;
    opts.seed = static_cast<std::uint64_t>(mph * 1000);
    opts.anneal_iterations = 9000;
    opts.restarts = 2;
    opts.tolerance = 0.02;
    opts.pool = &pool;
    const auto env = eg::generate_with_measures({mph, 0.8, 0.15}, opts);
    const auto etc = env.ecs.to_etc();

    sc::TaskList tasks;
    for (int rep = 0; rep < 3; ++rep)
      for (std::size_t i = 0; i < etc.task_count(); ++i) tasks.push_back(i);

    for (const auto& h : {sc::Heuristic{"Min-Min", sc::map_min_min},
                          sc::Heuristic{"Max-Min", sc::map_max_min},
                          sc::Heuristic{"MCT", sc::map_mct}}) {
      const auto a = h.map(etc, tasks);
      const double tau = sc::tau_with_slack(etc, tasks, a, 0.2);
      const auto rob = sc::makespan_robustness(etc, tasks, a, tau);
      // Normalize the radius by the makespan so rows are comparable.
      const double norm = rob.metric / sc::makespan(etc, tasks, a);
      t.add_row({format_fixed(env.achieved.mph, 2), h.name,
                 format_fixed(norm, 3),
                 format_fixed(violation_rate(etc, tasks, a, tau, 0.15, rng),
                              3)});
    }
  }
  t.print(std::cout);
  std::cout << "\nThe normalized robustness radius shrinks as MPH falls: "
               "heterogeneous environments funnel more\ntasks onto the fast "
               "machines, so the critical machine carries more tasks and "
               "has less slack per\ntask. At 15% estimate noise the "
               "empirical violation rates stay below ~10% for every "
               "heuristic —\nthe 20%-slack constraint the radius is "
               "measured against holds with real headroom.\n";
  return 0;
}
