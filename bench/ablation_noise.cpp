// Robustness study: ETC values are estimates, so how much estimation error
// can the measures absorb? Sweeps lognormal noise over the SPEC matrices
// and reports the mean absolute drift of each measure, plus the capability
// -loss case (entries becoming "cannot run").
#include <cmath>
#include <iostream>

#include "core/measures.hpp"
#include "etcgen/noise.hpp"
#include "io/table.hpp"
#include "spec/spec_data.hpp"

int main() {
  using hetero::io::format_fixed;
  namespace eg = hetero::etcgen;

  const auto& etc = hetero::spec::spec_cfp2006rate();
  const auto base = hetero::core::measure_set(etc.to_ecs());
  std::cout << "Measure robustness to ETC estimation error (SPEC CFP "
               "17x5)\nbaseline: MPH=" << format_fixed(base.mph, 3)
            << " TDH=" << format_fixed(base.tdh, 3)
            << " TMA=" << format_fixed(base.tma, 3) << "\n\n";

  constexpr int kReps = 40;
  hetero::io::Table t(
      {"noise COV", "mean |dMPH|", "mean |dTDH|", "mean |dTMA|"});
  eg::Rng rng = eg::make_rng(777);
  for (const double cov : {0.01, 0.05, 0.10, 0.25, 0.50}) {
    double dm = 0, dt = 0, da = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto noisy = eg::perturb_lognormal(etc, cov, rng);
      const auto m = hetero::core::measure_set(noisy.to_ecs());
      dm += std::abs(m.mph - base.mph);
      dt += std::abs(m.tdh - base.tdh);
      da += std::abs(m.tma - base.tma);
    }
    t.add_row({format_fixed(cov, 2), format_fixed(dm / kReps, 4),
               format_fixed(dt / kReps, 4), format_fixed(da / kReps, 4)});
  }
  t.print(std::cout);

  // Capability loss pushes TMA up: zeros in the ECS matrix are the extreme
  // affinity signal (paper Section IV: a task runnable on one machine only
  // gives TMA = 1).
  std::cout << "\nCapability loss (entries -> cannot-run):\n";
  hetero::io::Table t2({"drop probability", "mean TMA"});
  for (const double p : {0.0, 0.1, 0.3}) {
    double tma_sum = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto dropped = eg::drop_capabilities(etc, p, rng);
      tma_sum += hetero::core::measure_set(dropped.to_ecs()).tma;
    }
    t2.add_row({format_fixed(p, 1), format_fixed(tma_sum / kReps, 3)});
  }
  t2.print(std::cout);
  std::cout << "\nSmall estimate noise (COV <= 0.10) moves every measure by "
               "well under 0.05 on the SPEC\nenvironments; losing "
               "capabilities drives TMA toward its extreme, as Section IV "
               "predicts.\n";
  return 0;
}
