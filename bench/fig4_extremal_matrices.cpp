// Reproduces paper Figure 4: eight extreme 2x2 ECS matrices at the corners
// of the (MPH, TDH, TMA) cube. A-D have TMA = 1 (a task type runnable on
// only one machine); E-H have TMA = 0 (proportional columns). The paper also
// notes that A, B and D converge under eq. 9 to the standard form of C.
#include <iostream>

#include "core/etc_matrix.hpp"
#include "core/measures.hpp"
#include "core/standard_form.hpp"
#include "io/table.hpp"

int main() {
  using hetero::core::EcsMatrix;
  using hetero::io::format_fixed;
  using hetero::linalg::Matrix;

  struct Case {
    const char* name;
    Matrix ecs;
    const char* corner;  // paper's qualitative description
  };
  const Case cases[] = {
      {"A", Matrix{{10, 0}, {9, 1}}, "low MPH, high TDH, TMA=1"},
      {"B", Matrix{{1, 0}, {9, 90}}, "low MPH, low TDH, TMA=1"},
      {"C", Matrix{{1, 0}, {0, 1}}, "high MPH, high TDH, TMA=1"},
      {"D", Matrix{{1, 0}, {50, 51}}, "high MPH, low TDH, TMA=1"},
      {"E", Matrix{{1, 10}, {1, 10}}, "low MPH, high TDH, TMA=0"},
      {"F", Matrix{{1, 10}, {10, 100}}, "low MPH, low TDH, TMA=0"},
      {"G", Matrix{{1, 1}, {1, 1}}, "high MPH, high TDH, TMA=0"},
      {"H", Matrix{{1, 1}, {10, 10}}, "high MPH, low TDH, TMA=0"},
  };

  std::cout << "Figure 4 — extreme 2x2 ECS matrices (entries reconstructed "
               "from the corner descriptions)\n\n";
  hetero::io::Table t({"matrix", "entries", "MPH", "TDH", "TMA", "corner"});
  for (const auto& c : cases) {
    const auto m = hetero::core::measure_set(EcsMatrix(c.ecs));
    const std::string entries =
        "[" + hetero::io::format_general(c.ecs(0, 0)) + " " +
        hetero::io::format_general(c.ecs(0, 1)) + "; " +
        hetero::io::format_general(c.ecs(1, 0)) + " " +
        hetero::io::format_general(c.ecs(1, 1)) + "]";
    t.add_row({c.name, entries, format_fixed(m.mph, 2), format_fixed(m.tdh, 2),
               format_fixed(m.tma, 2), c.corner});
  }
  t.print(std::cout);

  // The convergence claim of Section IV.
  const auto c_std = hetero::core::standardize(Matrix{{1, 0}, {0, 1}});
  std::cout << "\nstandard form of C = [[" << c_std.standard(0, 0) << ", "
            << c_std.standard(0, 1) << "], [" << c_std.standard(1, 0) << ", "
            << c_std.standard(1, 1) << "]]\n";
  for (const char* name : {"A", "B", "D"}) {
    const Case* c = nullptr;
    for (const auto& k : cases)
      if (std::string(k.name) == name) c = &k;
    const auto r = hetero::core::standardize(c->ecs);
    std::cout << name << " converges to the standard form of C: max |diff| = "
              << hetero::io::format_general(
                     hetero::linalg::max_abs_diff(r.standard, c_std.standard))
              << '\n';
  }
  return 0;
}
