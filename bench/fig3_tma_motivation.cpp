// Reproduces paper Figure 3: two ECS matrices that are completely
// homogeneous in machine performance, yet (b)'s machines are specialized to
// task groups — the aspect MPH misses and TMA captures. Entries are
// reconstructed (originals lost to OCR) preserving the stated properties.
#include <iostream>

#include "core/etc_matrix.hpp"
#include "core/measures.hpp"
#include "io/table.hpp"

int main() {
  using hetero::core::EcsMatrix;
  using hetero::io::format_fixed;
  using hetero::linalg::Matrix;

  const EcsMatrix a(Matrix{{4, 4, 4}, {2, 2, 2}, {6, 6, 6}});
  const EcsMatrix b(Matrix{{10, 1, 1}, {1, 10, 1}, {1, 1, 10}});

  std::cout << "Figure 3 — task-machine affinity motivation\n\n(a) no "
               "affinity: every machine identical for every task\n";
  hetero::io::print_ecs(std::cout, a, 0);
  std::cout << "\n(b) high affinity: each machine specialized, same column "
               "sums\n";
  hetero::io::print_ecs(std::cout, b, 0);

  hetero::io::Table t({"matrix", "MPH", "TMA"});
  t.add_row({"(a)", format_fixed(hetero::core::mph(a), 2),
             format_fixed(hetero::core::tma(a), 2)});
  t.add_row({"(b)", format_fixed(hetero::core::mph(b), 2),
             format_fixed(hetero::core::tma(b), 2)});
  std::cout << '\n';
  t.print(std::cout);
  std::cout << "\npaper: both matrices are machine-performance homogeneous "
               "(MPH = 1);\nthe angle between columns is 0 in (a) and > 0 in "
               "(b), so only (b) has TMA > 0.\n";
  return 0;
}
