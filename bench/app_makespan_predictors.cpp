// Application study (paper Section I, application a / ref [9]): using the
// heterogeneity measures as statistical predictors of scheduling behavior.
// Monte-Carlo over range-based environments: for each, the three measures
// and two outcome statistics — the Min-Min makespan normalized by the lower
// bound, and the advantage of Min-Min over load-blind MET. The table
// reports Pearson correlations; |r| close to 1 means the measure predicts.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/measures.hpp"
#include "etcgen/range_based.hpp"
#include "io/table.hpp"
#include "linalg/qr.hpp"
#include "parallel/thread_pool.hpp"
#include "sched/heuristics.hpp"

namespace {

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
    sxy += x[i] * y[i];
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  return cov / std::sqrt(vx * vy);
}

}  // namespace

int main() {
  namespace eg = hetero::etcgen;
  namespace sc = hetero::sched;
  using hetero::io::format_fixed;

  constexpr std::size_t kTrials = 120;

  // Trials are independent: fan them out over a pool, each seeded by its
  // own trial index so the table does not depend on the thread count.
  std::vector<double> mph(kTrials), tdh(kTrials), tma(kTrials),
      quality(kTrials), met_penalty(kTrials);
  hetero::par::ThreadPool pool;
  hetero::par::parallel_for(pool, 0, kTrials, [&](std::size_t trial) {
    eg::Rng rng = eg::make_rng(2026 + static_cast<std::uint64_t>(trial));
    eg::RangeBasedOptions opts;
    opts.tasks = 12;
    opts.machines = 6;
    opts.task_range = eg::uniform(rng, 2.0, 200.0);
    opts.machine_range = eg::uniform(rng, 1.2, 60.0);
    // Consistent matrices: the regime where load-blind MET actually piles
    // work on the globally fastest machine (Braun et al. [6]).
    opts.consistency = eg::Consistency::consistent;
    const auto etc = eg::generate_range_based(opts, rng);
    const auto m = hetero::core::measure_set(etc.to_ecs());

    sc::TaskList tasks;
    for (int rep = 0; rep < 3; ++rep)
      for (std::size_t i = 0; i < etc.task_count(); ++i) tasks.push_back(i);

    const double lb = sc::makespan_lower_bound(etc, tasks);
    const double minmin =
        sc::makespan(etc, tasks, sc::map_min_min(etc, tasks));
    const double met = sc::makespan(etc, tasks, sc::map_met(etc, tasks));

    mph[trial] = m.mph;
    tdh[trial] = m.tdh;
    tma[trial] = m.tma;
    quality[trial] = minmin / lb;
    met_penalty[trial] = met / minmin;
  });

  std::cout << "Measures as predictors of scheduling outcomes (" << kTrials
            << " range-based environments, 12x6, 36 tasks)\n\n";
  hetero::io::Table t({"measure", "r vs Min-Min/LB", "r vs MET/Min-Min"});
  t.add_row({"MPH", format_fixed(pearson(mph, quality), 2),
             format_fixed(pearson(mph, met_penalty), 2)});
  t.add_row({"TDH", format_fixed(pearson(tdh, quality), 2),
             format_fixed(pearson(tdh, met_penalty), 2)});
  t.add_row({"TMA", format_fixed(pearson(tma, quality), 2),
             format_fixed(pearson(tma, met_penalty), 2)});
  t.print(std::cout);

  // Multiple regression: how much of each outcome do the three measures
  // explain *jointly*?
  hetero::linalg::Matrix predictors(mph.size(), 3);
  for (std::size_t i = 0; i < mph.size(); ++i) {
    predictors(i, 0) = mph[i];
    predictors(i, 1) = tdh[i];
    predictors(i, 2) = tma[i];
  }
  const auto fit_q = hetero::linalg::fit_linear(predictors, quality);
  const auto fit_m = hetero::linalg::fit_linear(predictors, met_penalty);
  std::cout << "\nJoint linear model (intercept, MPH, TDH, TMA):\n"
            << "  Min-Min/LB   R^2 = " << format_fixed(fit_q.r_squared, 2)
            << "  coefficients: " << format_fixed(fit_q.coefficients[0], 2)
            << ", " << format_fixed(fit_q.coefficients[1], 2) << ", "
            << format_fixed(fit_q.coefficients[2], 2) << ", "
            << format_fixed(fit_q.coefficients[3], 2) << '\n'
            << "  MET/Min-Min  R^2 = " << format_fixed(fit_m.r_squared, 2)
            << "  coefficients: " << format_fixed(fit_m.coefficients[0], 2)
            << ", " << format_fixed(fit_m.coefficients[1], 2) << ", "
            << format_fixed(fit_m.coefficients[2], 2) << ", "
            << format_fixed(fit_m.coefficients[3], 2) << '\n';

  std::cout
      << "\nReading the correlations: on consistent matrices MET sends every "
         "task to the one globally fastest\nmachine, so its penalty over "
         "Min-Min is *largest* when machines are homogeneous (high MPH: "
         "many\nequally good machines sit idle) and shrinks as TMA rises "
         "(per-task best machines differ, so MET\nspreads load) — MPH "
         "correlates positively and TMA negatively with MET/Min-Min. "
         "Min-Min's distance\nfrom the lower bound grows with affinity "
         "(positive r for TMA in column 1).\n";
  return 0;
}
