// Reproduces paper Section VI: the eq. 10 matrix that cannot be converted
// to a standard ECS matrix, its eq. 11/12 block-triangular exposure, and the
// support / total-support / full-indecomposability classification of
// Marshall & Olkin [20] and Sinkhorn [21].
#include <iostream>

#include "core/standard_form.hpp"
#include "graph/structure.hpp"
#include "io/table.hpp"
#include "linalg/matrix.hpp"

namespace {

const char* name_of(hetero::core::NormalizabilityClass c) {
  using N = hetero::core::NormalizabilityClass;
  switch (c) {
    case N::positive: return "positive";
    case N::normalizable_pattern: return "normalizable pattern";
    case N::limit_only: return "limit only (no exact scaling)";
    case N::not_normalizable: return "not normalizable";
  }
  return "?";
}

void classify(const char* label, const hetero::linalg::Matrix& m) {
  namespace g = hetero::graph;
  std::cout << label << ":\n  support=" << (g::has_support(m) ? "yes" : "no")
            << "  total support=" << (g::has_total_support(m) ? "yes" : "no")
            << "  fully indecomposable="
            << (g::is_fully_indecomposable(m) ? "yes" : "no")
            << "  normalizable="
            << (g::is_sinkhorn_normalizable(m) ? "yes" : "no") << '\n';
}

}  // namespace

int main() {
  using hetero::linalg::Matrix;
  const Matrix eq10{{0, 0, 1}, {1, 0, 1}, {0, 1, 0}};

  std::cout << "Section VI — matrices without a standard form\n\n"
               "eq. 10 matrix (reconstructed from the stated sums):\n";
  hetero::io::print_matrix(std::cout, eq10, {"r1", "r2", "r3"},
                           {"c1", "c2", "c3"}, 0);

  classify("\neq. 10", eq10);

  // eq. 12: moving the last column to the front exposes the block form.
  const std::size_t rows[] = {0, 1, 2};
  const std::size_t cols[] = {2, 0, 1};
  std::cout << "\neq. 12 — last column moved to the front (block "
               "lower-triangular, A11 = 1x1, A22 = 2x2):\n";
  hetero::io::print_matrix(std::cout, eq10.permuted(rows, cols),
                           {"r1", "r2", "r3"}, {"c3", "c1", "c2"}, 0);

  const auto form = hetero::graph::block_triangular_form(eq10);
  std::cout << "\nautomatic block decomposition: blocks of size";
  for (std::size_t s : form->block_sizes) std::cout << ' ' << s;
  std::cout << '\n';

  // What the iteration does on it.
  hetero::core::SinkhornOptions opts;
  const auto r = hetero::core::standardize(eq10, opts);
  std::cout << "\nSinkhorn on eq. 10: pattern = " << name_of(r.pattern)
            << ", projected to total-support core = "
            << (r.projected_to_core ? "yes" : "no")
            << "\nlimit matrix (the (2,3) entry's mass vanishes):\n";
  hetero::io::print_matrix(std::cout, r.standard, {"r1", "r2", "r3"},
                           {"c1", "c2", "c3"}, 3);

  // The paper's counterpoint: a positive-diagonal matrix is decomposable in
  // form yet trivially normalizable.
  const Matrix diag = Matrix::diagonal(std::vector<double>{2.0, 5.0, 9.0});
  classify("\ndiagonal(2, 5, 9)", diag);
  const auto d = hetero::core::standardize(diag);
  std::cout << "  converges to the identity in " << d.iterations
            << " iteration(s)\n";
  return 0;
}
