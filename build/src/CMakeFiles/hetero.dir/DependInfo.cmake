
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/clustering.cpp" "src/CMakeFiles/hetero.dir/core/clustering.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/core/clustering.cpp.o.d"
  "/root/repo/src/core/confidence.cpp" "src/CMakeFiles/hetero.dir/core/confidence.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/core/confidence.cpp.o.d"
  "/root/repo/src/core/etc_matrix.cpp" "src/CMakeFiles/hetero.dir/core/etc_matrix.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/core/etc_matrix.cpp.o.d"
  "/root/repo/src/core/extracts.cpp" "src/CMakeFiles/hetero.dir/core/extracts.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/core/extracts.cpp.o.d"
  "/root/repo/src/core/measures.cpp" "src/CMakeFiles/hetero.dir/core/measures.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/core/measures.cpp.o.d"
  "/root/repo/src/core/performance.cpp" "src/CMakeFiles/hetero.dir/core/performance.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/core/performance.cpp.o.d"
  "/root/repo/src/core/region.cpp" "src/CMakeFiles/hetero.dir/core/region.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/core/region.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/hetero.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/core/report.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/CMakeFiles/hetero.dir/core/sensitivity.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/core/sensitivity.cpp.o.d"
  "/root/repo/src/core/standard_form.cpp" "src/CMakeFiles/hetero.dir/core/standard_form.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/core/standard_form.cpp.o.d"
  "/root/repo/src/core/statistics.cpp" "src/CMakeFiles/hetero.dir/core/statistics.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/core/statistics.cpp.o.d"
  "/root/repo/src/core/svd_analysis.cpp" "src/CMakeFiles/hetero.dir/core/svd_analysis.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/core/svd_analysis.cpp.o.d"
  "/root/repo/src/core/whatif.cpp" "src/CMakeFiles/hetero.dir/core/whatif.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/core/whatif.cpp.o.d"
  "/root/repo/src/etcgen/anneal.cpp" "src/CMakeFiles/hetero.dir/etcgen/anneal.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/etcgen/anneal.cpp.o.d"
  "/root/repo/src/etcgen/correlation.cpp" "src/CMakeFiles/hetero.dir/etcgen/correlation.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/etcgen/correlation.cpp.o.d"
  "/root/repo/src/etcgen/cvb.cpp" "src/CMakeFiles/hetero.dir/etcgen/cvb.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/etcgen/cvb.cpp.o.d"
  "/root/repo/src/etcgen/noise.cpp" "src/CMakeFiles/hetero.dir/etcgen/noise.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/etcgen/noise.cpp.o.d"
  "/root/repo/src/etcgen/range_based.cpp" "src/CMakeFiles/hetero.dir/etcgen/range_based.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/etcgen/range_based.cpp.o.d"
  "/root/repo/src/etcgen/suite.cpp" "src/CMakeFiles/hetero.dir/etcgen/suite.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/etcgen/suite.cpp.o.d"
  "/root/repo/src/etcgen/target_measures.cpp" "src/CMakeFiles/hetero.dir/etcgen/target_measures.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/etcgen/target_measures.cpp.o.d"
  "/root/repo/src/graph/bipartite_matching.cpp" "src/CMakeFiles/hetero.dir/graph/bipartite_matching.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/graph/bipartite_matching.cpp.o.d"
  "/root/repo/src/graph/scc.cpp" "src/CMakeFiles/hetero.dir/graph/scc.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/graph/scc.cpp.o.d"
  "/root/repo/src/graph/structure.cpp" "src/CMakeFiles/hetero.dir/graph/structure.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/graph/structure.cpp.o.d"
  "/root/repo/src/io/csv.cpp" "src/CMakeFiles/hetero.dir/io/csv.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/io/csv.cpp.o.d"
  "/root/repo/src/io/json.cpp" "src/CMakeFiles/hetero.dir/io/json.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/io/json.cpp.o.d"
  "/root/repo/src/io/matrix_market.cpp" "src/CMakeFiles/hetero.dir/io/matrix_market.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/io/matrix_market.cpp.o.d"
  "/root/repo/src/io/table.cpp" "src/CMakeFiles/hetero.dir/io/table.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/io/table.cpp.o.d"
  "/root/repo/src/linalg/jacobi_eigen.cpp" "src/CMakeFiles/hetero.dir/linalg/jacobi_eigen.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/linalg/jacobi_eigen.cpp.o.d"
  "/root/repo/src/linalg/lu.cpp" "src/CMakeFiles/hetero.dir/linalg/lu.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/linalg/lu.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/CMakeFiles/hetero.dir/linalg/matrix.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/linalg/matrix.cpp.o.d"
  "/root/repo/src/linalg/qr.cpp" "src/CMakeFiles/hetero.dir/linalg/qr.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/linalg/qr.cpp.o.d"
  "/root/repo/src/linalg/svd.cpp" "src/CMakeFiles/hetero.dir/linalg/svd.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/linalg/svd.cpp.o.d"
  "/root/repo/src/linalg/vector_ops.cpp" "src/CMakeFiles/hetero.dir/linalg/vector_ops.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/linalg/vector_ops.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/CMakeFiles/hetero.dir/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/sched/dynamic.cpp" "src/CMakeFiles/hetero.dir/sched/dynamic.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/sched/dynamic.cpp.o.d"
  "/root/repo/src/sched/evolutionary.cpp" "src/CMakeFiles/hetero.dir/sched/evolutionary.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/sched/evolutionary.cpp.o.d"
  "/root/repo/src/sched/heuristics.cpp" "src/CMakeFiles/hetero.dir/sched/heuristics.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/sched/heuristics.cpp.o.d"
  "/root/repo/src/sched/makespan.cpp" "src/CMakeFiles/hetero.dir/sched/makespan.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/sched/makespan.cpp.o.d"
  "/root/repo/src/sched/robustness.cpp" "src/CMakeFiles/hetero.dir/sched/robustness.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/sched/robustness.cpp.o.d"
  "/root/repo/src/sched/workload.cpp" "src/CMakeFiles/hetero.dir/sched/workload.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/sched/workload.cpp.o.d"
  "/root/repo/src/spec/spec_data.cpp" "src/CMakeFiles/hetero.dir/spec/spec_data.cpp.o" "gcc" "src/CMakeFiles/hetero.dir/spec/spec_data.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
