file(REMOVE_RECURSE
  "libhetero.a"
)
