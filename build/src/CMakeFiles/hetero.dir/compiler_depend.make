# Empty compiler generated dependencies file for hetero.
# This may be replaced when dependencies are built.
