file(REMOVE_RECURSE
  "CMakeFiles/sec6_decomposable.dir/sec6_decomposable.cpp.o"
  "CMakeFiles/sec6_decomposable.dir/sec6_decomposable.cpp.o.d"
  "sec6_decomposable"
  "sec6_decomposable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_decomposable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
