# Empty dependencies file for sec6_decomposable.
# This may be replaced when dependencies are built.
