# Empty dependencies file for app_dynamic_modes.
# This may be replaced when dependencies are built.
