file(REMOVE_RECURSE
  "CMakeFiles/app_dynamic_modes.dir/app_dynamic_modes.cpp.o"
  "CMakeFiles/app_dynamic_modes.dir/app_dynamic_modes.cpp.o.d"
  "app_dynamic_modes"
  "app_dynamic_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_dynamic_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
