# Empty dependencies file for app_makespan_predictors.
# This may be replaced when dependencies are built.
