file(REMOVE_RECURSE
  "CMakeFiles/app_makespan_predictors.dir/app_makespan_predictors.cpp.o"
  "CMakeFiles/app_makespan_predictors.dir/app_makespan_predictors.cpp.o.d"
  "app_makespan_predictors"
  "app_makespan_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_makespan_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
