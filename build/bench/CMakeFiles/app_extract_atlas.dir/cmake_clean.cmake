file(REMOVE_RECURSE
  "CMakeFiles/app_extract_atlas.dir/app_extract_atlas.cpp.o"
  "CMakeFiles/app_extract_atlas.dir/app_extract_atlas.cpp.o.d"
  "app_extract_atlas"
  "app_extract_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_extract_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
