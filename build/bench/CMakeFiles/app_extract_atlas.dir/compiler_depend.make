# Empty compiler generated dependencies file for app_extract_atlas.
# This may be replaced when dependencies are built.
