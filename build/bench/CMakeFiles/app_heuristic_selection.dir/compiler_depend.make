# Empty compiler generated dependencies file for app_heuristic_selection.
# This may be replaced when dependencies are built.
