file(REMOVE_RECURSE
  "CMakeFiles/app_heuristic_selection.dir/app_heuristic_selection.cpp.o"
  "CMakeFiles/app_heuristic_selection.dir/app_heuristic_selection.cpp.o.d"
  "app_heuristic_selection"
  "app_heuristic_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_heuristic_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
