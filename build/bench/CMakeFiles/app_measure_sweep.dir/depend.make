# Empty dependencies file for app_measure_sweep.
# This may be replaced when dependencies are built.
