file(REMOVE_RECURSE
  "CMakeFiles/app_measure_sweep.dir/app_measure_sweep.cpp.o"
  "CMakeFiles/app_measure_sweep.dir/app_measure_sweep.cpp.o.d"
  "app_measure_sweep"
  "app_measure_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_measure_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
