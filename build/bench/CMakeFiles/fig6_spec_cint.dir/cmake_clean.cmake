file(REMOVE_RECURSE
  "CMakeFiles/fig6_spec_cint.dir/fig6_spec_cint.cpp.o"
  "CMakeFiles/fig6_spec_cint.dir/fig6_spec_cint.cpp.o.d"
  "fig6_spec_cint"
  "fig6_spec_cint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_spec_cint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
