# Empty compiler generated dependencies file for fig6_spec_cint.
# This may be replaced when dependencies are built.
