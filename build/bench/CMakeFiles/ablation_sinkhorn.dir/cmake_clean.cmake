file(REMOVE_RECURSE
  "CMakeFiles/ablation_sinkhorn.dir/ablation_sinkhorn.cpp.o"
  "CMakeFiles/ablation_sinkhorn.dir/ablation_sinkhorn.cpp.o.d"
  "ablation_sinkhorn"
  "ablation_sinkhorn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sinkhorn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
