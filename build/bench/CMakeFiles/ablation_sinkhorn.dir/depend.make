# Empty dependencies file for ablation_sinkhorn.
# This may be replaced when dependencies are built.
