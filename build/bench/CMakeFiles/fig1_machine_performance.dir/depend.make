# Empty dependencies file for fig1_machine_performance.
# This may be replaced when dependencies are built.
