file(REMOVE_RECURSE
  "CMakeFiles/fig1_machine_performance.dir/fig1_machine_performance.cpp.o"
  "CMakeFiles/fig1_machine_performance.dir/fig1_machine_performance.cpp.o.d"
  "fig1_machine_performance"
  "fig1_machine_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_machine_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
