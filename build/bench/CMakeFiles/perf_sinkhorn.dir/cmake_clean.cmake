file(REMOVE_RECURSE
  "CMakeFiles/perf_sinkhorn.dir/perf_sinkhorn.cpp.o"
  "CMakeFiles/perf_sinkhorn.dir/perf_sinkhorn.cpp.o.d"
  "perf_sinkhorn"
  "perf_sinkhorn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_sinkhorn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
