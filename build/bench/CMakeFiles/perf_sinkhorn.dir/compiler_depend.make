# Empty compiler generated dependencies file for perf_sinkhorn.
# This may be replaced when dependencies are built.
