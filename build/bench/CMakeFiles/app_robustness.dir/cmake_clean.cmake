file(REMOVE_RECURSE
  "CMakeFiles/app_robustness.dir/app_robustness.cpp.o"
  "CMakeFiles/app_robustness.dir/app_robustness.cpp.o.d"
  "app_robustness"
  "app_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
