# Empty dependencies file for app_robustness.
# This may be replaced when dependencies are built.
