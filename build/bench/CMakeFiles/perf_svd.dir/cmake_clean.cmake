file(REMOVE_RECURSE
  "CMakeFiles/perf_svd.dir/perf_svd.cpp.o"
  "CMakeFiles/perf_svd.dir/perf_svd.cpp.o.d"
  "perf_svd"
  "perf_svd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_svd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
