file(REMOVE_RECURSE
  "CMakeFiles/fig7_spec_cfp.dir/fig7_spec_cfp.cpp.o"
  "CMakeFiles/fig7_spec_cfp.dir/fig7_spec_cfp.cpp.o.d"
  "fig7_spec_cfp"
  "fig7_spec_cfp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_spec_cfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
