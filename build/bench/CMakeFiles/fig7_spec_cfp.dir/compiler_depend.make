# Empty compiler generated dependencies file for fig7_spec_cfp.
# This may be replaced when dependencies are built.
