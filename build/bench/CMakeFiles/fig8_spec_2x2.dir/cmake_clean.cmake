file(REMOVE_RECURSE
  "CMakeFiles/fig8_spec_2x2.dir/fig8_spec_2x2.cpp.o"
  "CMakeFiles/fig8_spec_2x2.dir/fig8_spec_2x2.cpp.o.d"
  "fig8_spec_2x2"
  "fig8_spec_2x2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_spec_2x2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
