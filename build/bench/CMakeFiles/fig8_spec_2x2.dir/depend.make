# Empty dependencies file for fig8_spec_2x2.
# This may be replaced when dependencies are built.
