file(REMOVE_RECURSE
  "CMakeFiles/ablation_tma.dir/ablation_tma.cpp.o"
  "CMakeFiles/ablation_tma.dir/ablation_tma.cpp.o.d"
  "ablation_tma"
  "ablation_tma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
