# Empty compiler generated dependencies file for ablation_tma.
# This may be replaced when dependencies are built.
