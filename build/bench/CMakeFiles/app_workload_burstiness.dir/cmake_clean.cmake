file(REMOVE_RECURSE
  "CMakeFiles/app_workload_burstiness.dir/app_workload_burstiness.cpp.o"
  "CMakeFiles/app_workload_burstiness.dir/app_workload_burstiness.cpp.o.d"
  "app_workload_burstiness"
  "app_workload_burstiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_workload_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
