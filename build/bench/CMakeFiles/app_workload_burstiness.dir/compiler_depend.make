# Empty compiler generated dependencies file for app_workload_burstiness.
# This may be replaced when dependencies are built.
