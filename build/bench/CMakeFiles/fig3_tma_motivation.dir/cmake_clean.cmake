file(REMOVE_RECURSE
  "CMakeFiles/fig3_tma_motivation.dir/fig3_tma_motivation.cpp.o"
  "CMakeFiles/fig3_tma_motivation.dir/fig3_tma_motivation.cpp.o.d"
  "fig3_tma_motivation"
  "fig3_tma_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_tma_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
