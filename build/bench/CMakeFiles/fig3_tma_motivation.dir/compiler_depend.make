# Empty compiler generated dependencies file for fig3_tma_motivation.
# This may be replaced when dependencies are built.
