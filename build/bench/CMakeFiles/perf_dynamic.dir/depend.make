# Empty dependencies file for perf_dynamic.
# This may be replaced when dependencies are built.
