file(REMOVE_RECURSE
  "CMakeFiles/perf_dynamic.dir/perf_dynamic.cpp.o"
  "CMakeFiles/perf_dynamic.dir/perf_dynamic.cpp.o.d"
  "perf_dynamic"
  "perf_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
