file(REMOVE_RECURSE
  "CMakeFiles/fig2_mph_vs_alternatives.dir/fig2_mph_vs_alternatives.cpp.o"
  "CMakeFiles/fig2_mph_vs_alternatives.dir/fig2_mph_vs_alternatives.cpp.o.d"
  "fig2_mph_vs_alternatives"
  "fig2_mph_vs_alternatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_mph_vs_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
