# Empty dependencies file for fig2_mph_vs_alternatives.
# This may be replaced when dependencies are built.
