file(REMOVE_RECURSE
  "CMakeFiles/app_braun_taxonomy.dir/app_braun_taxonomy.cpp.o"
  "CMakeFiles/app_braun_taxonomy.dir/app_braun_taxonomy.cpp.o.d"
  "app_braun_taxonomy"
  "app_braun_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_braun_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
