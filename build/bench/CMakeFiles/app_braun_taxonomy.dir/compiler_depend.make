# Empty compiler generated dependencies file for app_braun_taxonomy.
# This may be replaced when dependencies are built.
