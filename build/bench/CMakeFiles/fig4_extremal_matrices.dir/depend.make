# Empty dependencies file for fig4_extremal_matrices.
# This may be replaced when dependencies are built.
