file(REMOVE_RECURSE
  "CMakeFiles/fig4_extremal_matrices.dir/fig4_extremal_matrices.cpp.o"
  "CMakeFiles/fig4_extremal_matrices.dir/fig4_extremal_matrices.cpp.o.d"
  "fig4_extremal_matrices"
  "fig4_extremal_matrices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_extremal_matrices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
