file(REMOVE_RECURSE
  "CMakeFiles/app_correlation_vs_tma.dir/app_correlation_vs_tma.cpp.o"
  "CMakeFiles/app_correlation_vs_tma.dir/app_correlation_vs_tma.cpp.o.d"
  "app_correlation_vs_tma"
  "app_correlation_vs_tma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_correlation_vs_tma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
