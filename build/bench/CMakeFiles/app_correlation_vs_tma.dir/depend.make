# Empty dependencies file for app_correlation_vs_tma.
# This may be replaced when dependencies are built.
