# Empty dependencies file for perf_measures.
# This may be replaced when dependencies are built.
