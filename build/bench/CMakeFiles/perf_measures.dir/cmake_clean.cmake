file(REMOVE_RECURSE
  "CMakeFiles/perf_measures.dir/perf_measures.cpp.o"
  "CMakeFiles/perf_measures.dir/perf_measures.cpp.o.d"
  "perf_measures"
  "perf_measures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_measures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
