file(REMOVE_RECURSE
  "CMakeFiles/test_svd_analysis.dir/test_svd_analysis.cpp.o"
  "CMakeFiles/test_svd_analysis.dir/test_svd_analysis.cpp.o.d"
  "test_svd_analysis"
  "test_svd_analysis.pdb"
  "test_svd_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svd_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
