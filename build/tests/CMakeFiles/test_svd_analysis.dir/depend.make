# Empty dependencies file for test_svd_analysis.
# This may be replaced when dependencies are built.
