file(REMOVE_RECURSE
  "CMakeFiles/test_standard_form.dir/test_standard_form.cpp.o"
  "CMakeFiles/test_standard_form.dir/test_standard_form.cpp.o.d"
  "test_standard_form"
  "test_standard_form.pdb"
  "test_standard_form[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_standard_form.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
