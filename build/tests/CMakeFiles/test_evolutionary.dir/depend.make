# Empty dependencies file for test_evolutionary.
# This may be replaced when dependencies are built.
