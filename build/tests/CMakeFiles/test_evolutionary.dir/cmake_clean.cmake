file(REMOVE_RECURSE
  "CMakeFiles/test_evolutionary.dir/test_evolutionary.cpp.o"
  "CMakeFiles/test_evolutionary.dir/test_evolutionary.cpp.o.d"
  "test_evolutionary"
  "test_evolutionary.pdb"
  "test_evolutionary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evolutionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
