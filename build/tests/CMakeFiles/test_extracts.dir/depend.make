# Empty dependencies file for test_extracts.
# This may be replaced when dependencies are built.
