file(REMOVE_RECURSE
  "CMakeFiles/test_extracts.dir/test_extracts.cpp.o"
  "CMakeFiles/test_extracts.dir/test_extracts.cpp.o.d"
  "test_extracts"
  "test_extracts.pdb"
  "test_extracts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extracts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
