file(REMOVE_RECURSE
  "CMakeFiles/test_etcgen.dir/test_etcgen.cpp.o"
  "CMakeFiles/test_etcgen.dir/test_etcgen.cpp.o.d"
  "test_etcgen"
  "test_etcgen.pdb"
  "test_etcgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_etcgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
