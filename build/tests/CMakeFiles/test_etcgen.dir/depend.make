# Empty dependencies file for test_etcgen.
# This may be replaced when dependencies are built.
