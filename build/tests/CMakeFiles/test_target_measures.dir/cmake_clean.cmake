file(REMOVE_RECURSE
  "CMakeFiles/test_target_measures.dir/test_target_measures.cpp.o"
  "CMakeFiles/test_target_measures.dir/test_target_measures.cpp.o.d"
  "test_target_measures"
  "test_target_measures.pdb"
  "test_target_measures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_target_measures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
