# Empty dependencies file for test_target_measures.
# This may be replaced when dependencies are built.
