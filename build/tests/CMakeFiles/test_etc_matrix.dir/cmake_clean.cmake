file(REMOVE_RECURSE
  "CMakeFiles/test_etc_matrix.dir/test_etc_matrix.cpp.o"
  "CMakeFiles/test_etc_matrix.dir/test_etc_matrix.cpp.o.d"
  "test_etc_matrix"
  "test_etc_matrix.pdb"
  "test_etc_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_etc_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
