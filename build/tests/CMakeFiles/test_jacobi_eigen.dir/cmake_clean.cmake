file(REMOVE_RECURSE
  "CMakeFiles/test_jacobi_eigen.dir/test_jacobi_eigen.cpp.o"
  "CMakeFiles/test_jacobi_eigen.dir/test_jacobi_eigen.cpp.o.d"
  "test_jacobi_eigen"
  "test_jacobi_eigen.pdb"
  "test_jacobi_eigen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jacobi_eigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
