# Empty dependencies file for test_jacobi_eigen.
# This may be replaced when dependencies are built.
