# Empty dependencies file for test_suite_gen.
# This may be replaced when dependencies are built.
