file(REMOVE_RECURSE
  "CMakeFiles/test_suite_gen.dir/test_suite_gen.cpp.o"
  "CMakeFiles/test_suite_gen.dir/test_suite_gen.cpp.o.d"
  "test_suite_gen"
  "test_suite_gen.pdb"
  "test_suite_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
