file(REMOVE_RECURSE
  "CMakeFiles/spec_analysis.dir/spec_analysis.cpp.o"
  "CMakeFiles/spec_analysis.dir/spec_analysis.cpp.o.d"
  "spec_analysis"
  "spec_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
