# Empty compiler generated dependencies file for generate_matrices.
# This may be replaced when dependencies are built.
