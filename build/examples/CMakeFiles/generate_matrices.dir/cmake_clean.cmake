file(REMOVE_RECURSE
  "CMakeFiles/generate_matrices.dir/generate_matrices.cpp.o"
  "CMakeFiles/generate_matrices.dir/generate_matrices.cpp.o.d"
  "generate_matrices"
  "generate_matrices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_matrices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
