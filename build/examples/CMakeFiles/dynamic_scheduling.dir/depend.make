# Empty dependencies file for dynamic_scheduling.
# This may be replaced when dependencies are built.
