file(REMOVE_RECURSE
  "CMakeFiles/dynamic_scheduling.dir/dynamic_scheduling.cpp.o"
  "CMakeFiles/dynamic_scheduling.dir/dynamic_scheduling.cpp.o.d"
  "dynamic_scheduling"
  "dynamic_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
