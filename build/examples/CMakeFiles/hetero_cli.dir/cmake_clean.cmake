file(REMOVE_RECURSE
  "CMakeFiles/hetero_cli.dir/hetero_cli.cpp.o"
  "CMakeFiles/hetero_cli.dir/hetero_cli.cpp.o.d"
  "hetero_cli"
  "hetero_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
