# Empty compiler generated dependencies file for hetero_cli.
# This may be replaced when dependencies are built.
