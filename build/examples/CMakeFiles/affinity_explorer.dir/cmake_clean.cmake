file(REMOVE_RECURSE
  "CMakeFiles/affinity_explorer.dir/affinity_explorer.cpp.o"
  "CMakeFiles/affinity_explorer.dir/affinity_explorer.cpp.o.d"
  "affinity_explorer"
  "affinity_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affinity_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
