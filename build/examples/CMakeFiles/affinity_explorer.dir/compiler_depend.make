# Empty compiler generated dependencies file for affinity_explorer.
# This may be replaced when dependencies are built.
