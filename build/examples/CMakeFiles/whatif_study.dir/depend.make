# Empty dependencies file for whatif_study.
# This may be replaced when dependencies are built.
