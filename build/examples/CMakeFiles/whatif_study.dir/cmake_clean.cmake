file(REMOVE_RECURSE
  "CMakeFiles/whatif_study.dir/whatif_study.cpp.o"
  "CMakeFiles/whatif_study.dir/whatif_study.cpp.o.d"
  "whatif_study"
  "whatif_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
