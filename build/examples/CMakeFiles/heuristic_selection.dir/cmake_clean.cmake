file(REMOVE_RECURSE
  "CMakeFiles/heuristic_selection.dir/heuristic_selection.cpp.o"
  "CMakeFiles/heuristic_selection.dir/heuristic_selection.cpp.o.d"
  "heuristic_selection"
  "heuristic_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heuristic_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
