# Empty compiler generated dependencies file for heuristic_selection.
# This may be replaced when dependencies are built.
