# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spec_analysis "/root/repo/build/examples/spec_analysis")
set_tests_properties(example_spec_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heuristic_selection "/root/repo/build/examples/heuristic_selection")
set_tests_properties(example_heuristic_selection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_generate_matrices "/root/repo/build/examples/generate_matrices")
set_tests_properties(example_generate_matrices PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_whatif_study "/root/repo/build/examples/whatif_study")
set_tests_properties(example_whatif_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dynamic_scheduling "/root/repo/build/examples/dynamic_scheduling")
set_tests_properties(example_dynamic_scheduling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_affinity_explorer "/root/repo/build/examples/affinity_explorer")
set_tests_properties(example_affinity_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hetero_cli_demo "/root/repo/build/examples/hetero_cli" "demo")
set_tests_properties(example_hetero_cli_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
