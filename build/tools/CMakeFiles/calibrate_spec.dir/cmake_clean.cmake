file(REMOVE_RECURSE
  "CMakeFiles/calibrate_spec.dir/calibrate_spec.cpp.o"
  "CMakeFiles/calibrate_spec.dir/calibrate_spec.cpp.o.d"
  "calibrate_spec"
  "calibrate_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
