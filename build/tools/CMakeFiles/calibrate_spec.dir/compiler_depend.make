# Empty compiler generated dependencies file for calibrate_spec.
# This may be replaced when dependencies are built.
